package packet

import "strings"

// Defect identifies one way in which a packet deviates from a strictly
// valid TCP/UDP/IPv4 wire format. The taxonomy mirrors the inert-packet
// rows of Table 3 in the lib·erate paper: every defect here is one that a
// middlebox, router, or endpoint OS may or may not check for, and those
// differences are exactly what the inert-packet-insertion evasion class
// exploits.
type Defect int

const (
	// DefectIPVersion: IP version nibble is not 4.
	DefectIPVersion Defect = iota
	// DefectIPHeaderLength: IHL below 5 or pointing past the packet.
	DefectIPHeaderLength
	// DefectIPTotalLengthLong: Total Length field larger than the bytes
	// actually on the wire.
	DefectIPTotalLengthLong
	// DefectIPTotalLengthShort: Total Length field smaller than the bytes
	// actually on the wire (trailing bytes are unclaimed).
	DefectIPTotalLengthShort
	// DefectIPProtocol: protocol number is not TCP, UDP, or ICMP.
	DefectIPProtocol
	// DefectIPChecksum: IP header checksum does not verify.
	DefectIPChecksum
	// DefectIPOptionInvalid: an IP option is malformed or unknown.
	DefectIPOptionInvalid
	// DefectIPOptionDeprecated: an IP option is syntactically valid but
	// deprecated (e.g. Stream ID, RFC 6814).
	DefectIPOptionDeprecated
	// DefectTCPDataOffset: TCP data offset below 5 or past segment end.
	DefectTCPDataOffset
	// DefectTCPChecksum: TCP checksum does not verify.
	DefectTCPChecksum
	// DefectTCPNoACK: a non-SYN, non-RST segment without the ACK flag.
	DefectTCPNoACK
	// DefectTCPFlagCombo: nonsensical flag combination (SYN+FIN, SYN+RST,
	// null, or xmas).
	DefectTCPFlagCombo
	// DefectUDPChecksum: UDP checksum present but wrong.
	DefectUDPChecksum
	// DefectUDPLengthLong: UDP Length field larger than available bytes.
	DefectUDPLengthLong
	// DefectUDPLengthShort: UDP Length field smaller than available bytes.
	DefectUDPLengthShort
	// DefectTruncated: the buffer is too short to hold the headers it
	// claims; parsing was best-effort.
	DefectTruncated

	numDefects
)

var defectNames = [...]string{
	DefectIPVersion:          "ip-version",
	DefectIPHeaderLength:     "ip-header-length",
	DefectIPTotalLengthLong:  "ip-total-length-long",
	DefectIPTotalLengthShort: "ip-total-length-short",
	DefectIPProtocol:         "ip-protocol",
	DefectIPChecksum:         "ip-checksum",
	DefectIPOptionInvalid:    "ip-option-invalid",
	DefectIPOptionDeprecated: "ip-option-deprecated",
	DefectTCPDataOffset:      "tcp-data-offset",
	DefectTCPChecksum:        "tcp-checksum",
	DefectTCPNoACK:           "tcp-no-ack",
	DefectTCPFlagCombo:       "tcp-flag-combo",
	DefectUDPChecksum:        "udp-checksum",
	DefectUDPLengthLong:      "udp-length-long",
	DefectUDPLengthShort:     "udp-length-short",
	DefectTruncated:          "truncated",
}

func (d Defect) String() string {
	if d >= 0 && int(d) < len(defectNames) {
		return defectNames[d]
	}
	return "defect(?)"
}

// DefectByName resolves the string form back to a Defect (for
// configuration files).
func DefectByName(name string) (Defect, bool) {
	for d, n := range defectNames {
		if n == name {
			return Defect(d), true
		}
	}
	return 0, false
}

// DefectNames lists every defined defect name.
func DefectNames() []string {
	out := make([]string, numDefects)
	copy(out, defectNames[:])
	return out
}

// DefectSet is a bitmask of Defects.
type DefectSet uint32

// Add returns s with d set.
func (s DefectSet) Add(d Defect) DefectSet { return s | 1<<uint(d) }

// Has reports whether d is in s.
func (s DefectSet) Has(d Defect) bool { return s&(1<<uint(d)) != 0 }

// Empty reports whether no defect is set.
func (s DefectSet) Empty() bool { return s == 0 }

// Intersects reports whether s and t share any defect.
func (s DefectSet) Intersects(t DefectSet) bool { return s&t != 0 }

// Defects returns the individual defects in s.
func (s DefectSet) Defects() []Defect {
	var out []Defect
	for d := Defect(0); d < numDefects; d++ {
		if s.Has(d) {
			out = append(out, d)
		}
	}
	return out
}

func (s DefectSet) String() string {
	ds := s.Defects()
	if len(ds) == 0 {
		return "clean"
	}
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.String()
	}
	return strings.Join(parts, ",")
}

// SetOf builds a DefectSet from a list of defects.
func SetOf(ds ...Defect) DefectSet {
	var s DefectSet
	for _, d := range ds {
		s = s.Add(d)
	}
	return s
}

// AllDefects is the set of every defined defect.
func AllDefects() DefectSet {
	var s DefectSet
	for d := Defect(0); d < numDefects; d++ {
		s = s.Add(d)
	}
	return s
}
