package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkFragmented(t *testing.T, payloadLen, parts int, id uint16) (orig []byte, frags [][]byte) {
	t.Helper()
	payload := make([]byte, payloadLen)
	rand.New(rand.NewSource(int64(id))).Read(payload)
	p := NewTCP(srcA, dstA, 40000, 80, 7, 0, FlagACK, payload)
	p.IP.ID = id
	p.Finalize()
	orig = p.Serialize()
	for _, f := range Fragment(p, parts) {
		frags = append(frags, f.Serialize())
	}
	return orig, frags
}

func TestReassemblerIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payloadLen := 100 + rng.Intn(1200)
		parts := 2 + rng.Intn(4)
		orig, frags := mkFragmented(t, payloadLen, parts, uint16(seed)|1)
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		r := NewReassembler()
		var out []byte
		done := 0
		for _, fr := range frags {
			if whole, ok := r.Add(fr); ok {
				out = whole
				done++
			}
		}
		return done == 1 && bytes.Equal(out, orig) && r.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestReassemblerNonFragmentPassthrough(t *testing.T) {
	r := NewReassembler()
	raw := NewTCP(srcA, dstA, 1, 2, 3, 0, FlagACK, []byte("whole")).Serialize()
	out, done := r.Add(raw)
	if !done || !bytes.Equal(out, raw) {
		t.Fatal("non-fragment altered")
	}
}

func TestReassemblerIncompleteStaysPending(t *testing.T) {
	_, frags := mkFragmented(t, 800, 3, 42)
	r := NewReassembler()
	for _, fr := range frags[:2] {
		if _, done := r.Add(fr); done {
			t.Fatal("completed without all fragments")
		}
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
	r.Flush()
	if r.Pending() != 0 {
		t.Fatal("flush failed")
	}
	// After flushing, even the last fragment cannot complete.
	if _, done := r.Add(frags[2]); done {
		t.Fatal("completed from a flushed state")
	}
}

func TestReassemblerInterleavedDatagrams(t *testing.T) {
	origA, fragsA := mkFragmented(t, 700, 2, 100)
	origB, fragsB := mkFragmented(t, 900, 3, 200)
	r := NewReassembler()
	var got [][]byte
	feed := [][]byte{fragsA[0], fragsB[0], fragsB[1], fragsA[1], fragsB[2]}
	for _, fr := range feed {
		if whole, done := r.Add(fr); done {
			got = append(got, whole)
		}
	}
	if len(got) != 2 {
		t.Fatalf("reassembled %d datagrams, want 2", len(got))
	}
	if !bytes.Equal(got[0], origA) || !bytes.Equal(got[1], origB) {
		t.Fatal("interleaved reassembly mixed datagrams")
	}
}

func TestReassemblerOverlapFirstWins(t *testing.T) {
	// Two "first" fragments with conflicting bytes at the same offset: the
	// first to arrive wins (the policy endpoints in the study exhibit, and
	// the basis of the GFC desync evasion).
	payload := bytes.Repeat([]byte("A"), 256)
	p := NewTCP(srcA, dstA, 40000, 80, 7, 0, FlagACK, payload)
	p.IP.ID = 77
	p.Finalize()
	frags := Fragment(p, 2)

	conflict := frags[0].Clone()
	for i := range conflict.Payload {
		conflict.Payload[i] = 'Z'
	}
	conflict.IP.Checksum = 0
	// Recompute header checksum only (keep it a valid fragment).
	tmp, _ := Inspect(conflict.Serialize())
	_ = tmp
	conflictRaw := reserializeFragment(conflict)

	r := NewReassembler()
	r.Add(conflictRaw)          // Z-copy arrives first
	r.Add(frags[0].Serialize()) // genuine copy second: ignored
	out, done := r.Add(frags[1].Serialize())
	if !done {
		t.Fatal("not reassembled")
	}
	q, _ := Inspect(out)
	if !bytes.Contains(q.Payload, []byte("ZZZZ")) {
		t.Fatal("first copy did not win")
	}
	if bytes.Contains(q.Payload[:len(conflict.Payload)-20], []byte("AAAA")) {
		t.Fatal("second copy leaked into the overlapped range")
	}
}

func reserializeFragment(f *Packet) []byte {
	raw := f.Serialize()
	raw[10], raw[11] = 0, 0
	cs := internetChecksum(0, raw[:20+len(f.IP.Options)])
	raw[10], raw[11] = byte(cs>>8), byte(cs)
	return raw
}

func TestInspectNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		p, _ := Inspect(data)
		_ = p.String()
		_ = p.Flow()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReassemblerNeverPanicsProperty(t *testing.T) {
	r := NewReassembler()
	f := func(data []byte) bool {
		_, _ = r.Add(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentAtBoundaries(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 400)
	p := NewTCP(srcA, dstA, 40000, 80, 9, 0, FlagACK, payload)
	p.IP.ID = 9
	p.Finalize()
	frags := FragmentAt(p, []int{48, 200, 201, -5, 10000}) // 201 unaligned→200 dup; junk ignored
	if len(frags) != 3 {
		t.Fatalf("fragments = %d, want 3 (cuts at 48 and 200)", len(frags))
	}
	if frags[0].IP.FragOffset != 0 || frags[1].IP.FragOffset != 6 || frags[2].IP.FragOffset != 25 {
		t.Fatalf("offsets: %d %d %d", frags[0].IP.FragOffset, frags[1].IP.FragOffset, frags[2].IP.FragOffset)
	}
	// Reassembly still yields the original.
	r := NewReassembler()
	var out []byte
	for _, fr := range frags {
		if whole, done := r.Add(fr.Serialize()); done {
			out = whole
		}
	}
	if !bytes.Equal(out, p.Serialize()) {
		t.Fatal("FragmentAt fragments do not reassemble")
	}
}
