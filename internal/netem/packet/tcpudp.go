package packet

import (
	"encoding/binary"
	"strings"
)

// TCPFlags is the TCP flag byte.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

func (f TCPFlags) Has(bits TCPFlags) bool { return f&bits == bits }

func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagURG, "URG"}, {FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	var parts []string
	for _, n := range names {
		if f&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// invalid reports whether the combination is nonsensical: SYN+FIN, SYN+RST,
// a null scan (no flags), or an xmas scan (FIN+PSH+URG).
func (f TCPFlags) invalid() bool {
	switch {
	case f.Has(FlagSYN | FlagFIN):
		return true
	case f.Has(FlagSYN | FlagRST):
		return true
	case f == 0:
		return true
	case f.Has(FlagFIN|FlagPSH|FlagURG) && !f.Has(FlagACK):
		return true
	}
	return false
}

// TCP is a TCP header. Like IPv4, fields serialize verbatim.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte
}

func (h *TCP) headerLen() int { return 20 + len(h.Options) }

func (h *TCP) marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint32(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Ack)
	b = append(b, h.DataOffset<<4, byte(h.Flags))
	b = binary.BigEndian.AppendUint16(b, h.Window)
	b = binary.BigEndian.AppendUint16(b, h.Checksum)
	b = binary.BigEndian.AppendUint16(b, h.Urgent)
	b = append(b, h.Options...)
	return b
}

// ComputeChecksum returns the correct TCP checksum for the given endpoints
// and payload.
func (h *TCP) ComputeChecksum(src, dst Addr, payload []byte) uint16 {
	return h.checksumWith(src, dst, payload, nil)
}

// computeChecksum returns the correct TCP checksum for the given endpoints
// and payload.
func (h *TCP) computeChecksum(src, dst Addr, payload []byte) uint16 {
	return h.checksumWith(src, dst, payload, nil)
}

// checksumWith sums the segment field-wise, mirroring marshal byte-for-byte
// (including the uint8 truncation of DataOffset<<4), with the checksum
// field counted as zero. cache, when non-nil, memoizes the payload's
// partial sum across repeated fix-ups of the same packet.
func (h *TCP) checksumWith(src, dst Addr, payload []byte, cache *paySumCache) uint16 {
	c := ckSum{sum: pseudoHeaderSum(src, dst, ProtoTCP, uint16(h.headerLen()+len(payload)))}
	c.sum += uint32(h.SrcPort) + uint32(h.DstPort)
	c.sum += h.Seq>>16 + h.Seq&0xffff
	c.sum += h.Ack>>16 + h.Ack&0xffff
	c.sum += uint32(h.DataOffset<<4)<<8 | uint32(h.Flags)
	c.sum += uint32(h.Window) + uint32(h.Urgent)
	c.add(h.Options)
	c.addPayload(payload, cache)
	return c.finish()
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

func (h *UDP) marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint16(b, h.Length)
	b = binary.BigEndian.AppendUint16(b, h.Checksum)
	return b
}

// ComputeChecksum returns the correct UDP checksum for the given endpoints
// and payload, honoring the current Length field value.
func (h *UDP) ComputeChecksum(src, dst Addr, payload []byte) uint16 {
	return h.checksumWith(src, dst, payload, nil)
}

func (h *UDP) computeChecksum(src, dst Addr, payload []byte) uint16 {
	return h.checksumWith(src, dst, payload, nil)
}

// checksumWith sums the datagram field-wise with the checksum field counted
// as zero. The checksum always covers the bytes that are present — endpoints
// validate against the same rule — while the pseudo-header carries whatever
// the Length field claims.
func (h *UDP) checksumWith(src, dst Addr, payload []byte, cache *paySumCache) uint16 {
	c := ckSum{sum: pseudoHeaderSum(src, dst, ProtoUDP, h.Length)}
	c.sum += uint32(h.SrcPort) + uint32(h.DstPort) + uint32(h.Length)
	c.addPayload(payload, cache)
	s := c.finish()
	if s == 0 {
		s = 0xffff
	}
	return s
}

// ICMP message types used by the simulator.
const (
	ICMPEchoReply        = 0
	ICMPDestUnreachable  = 3
	ICMPEchoRequest      = 8
	ICMPTimeExceeded     = 11
	ICMPParameterProblem = 12
)

// ICMP is a minimal ICMP header; Body carries the quoted original datagram
// for error messages (type 3/11/12).
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	Rest     uint32 // unused/identifier field
}

func (h *ICMP) marshal(b []byte) []byte {
	b = append(b, h.Type, h.Code)
	b = binary.BigEndian.AppendUint16(b, h.Checksum)
	b = binary.BigEndian.AppendUint32(b, h.Rest)
	return b
}

func (h *ICMP) computeChecksum(payload []byte) uint16 {
	return h.checksumWith(payload, nil)
}

func (h *ICMP) checksumWith(payload []byte, cache *paySumCache) uint16 {
	var c ckSum
	c.sum += uint32(h.Type)<<8 | uint32(h.Code)
	c.sum += h.Rest>>16 + h.Rest&0xffff
	c.addPayload(payload, cache)
	return c.finish()
}
