package packet

import (
	"encoding/binary"
	"strings"
)

// TCPFlags is the TCP flag byte.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

func (f TCPFlags) Has(bits TCPFlags) bool { return f&bits == bits }

func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagURG, "URG"}, {FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	var parts []string
	for _, n := range names {
		if f&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// invalid reports whether the combination is nonsensical: SYN+FIN, SYN+RST,
// a null scan (no flags), or an xmas scan (FIN+PSH+URG).
func (f TCPFlags) invalid() bool {
	switch {
	case f.Has(FlagSYN | FlagFIN):
		return true
	case f.Has(FlagSYN | FlagRST):
		return true
	case f == 0:
		return true
	case f.Has(FlagFIN|FlagPSH|FlagURG) && !f.Has(FlagACK):
		return true
	}
	return false
}

// TCP is a TCP header. Like IPv4, fields serialize verbatim.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte
}

func (h *TCP) headerLen() int { return 20 + len(h.Options) }

func (h *TCP) marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint32(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Ack)
	b = append(b, h.DataOffset<<4, byte(h.Flags))
	b = binary.BigEndian.AppendUint16(b, h.Window)
	b = binary.BigEndian.AppendUint16(b, h.Checksum)
	b = binary.BigEndian.AppendUint16(b, h.Urgent)
	b = append(b, h.Options...)
	return b
}

// ComputeChecksum returns the correct TCP checksum for the given endpoints
// and payload.
func (h *TCP) ComputeChecksum(src, dst Addr, payload []byte) uint16 {
	return h.computeChecksum(src, dst, payload)
}

// computeChecksum returns the correct TCP checksum for the given endpoints
// and payload.
func (h *TCP) computeChecksum(src, dst Addr, payload []byte) uint16 {
	seg := make([]byte, 0, h.headerLen()+len(payload))
	saved := h.Checksum
	h.Checksum = 0
	seg = h.marshal(seg)
	h.Checksum = saved
	seg = append(seg, payload...)
	return internetChecksum(pseudoHeaderSum(src, dst, ProtoTCP, uint16(len(seg))), seg)
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

func (h *UDP) marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint16(b, h.Length)
	b = binary.BigEndian.AppendUint16(b, h.Checksum)
	return b
}

// ComputeChecksum returns the correct UDP checksum for the given endpoints
// and payload, honoring the current Length field value.
func (h *UDP) ComputeChecksum(src, dst Addr, payload []byte) uint16 {
	return h.computeChecksum(src, dst, payload)
}

func (h *UDP) computeChecksum(src, dst Addr, payload []byte) uint16 {
	dg := make([]byte, 0, 8+len(payload))
	saved := h.Checksum
	h.Checksum = 0
	dg = h.marshal(dg)
	h.Checksum = saved
	dg = append(dg, payload...)
	// The checksum is computed over the datagram as claimed by the Length
	// field when it is shorter than the actual bytes; otherwise over what
	// is present. We always checksum what is present — endpoints validate
	// against the same rule.
	c := internetChecksum(pseudoHeaderSum(src, dst, ProtoUDP, h.Length), dg)
	if c == 0 {
		c = 0xffff
	}
	return c
}

// ICMP message types used by the simulator.
const (
	ICMPEchoReply        = 0
	ICMPDestUnreachable  = 3
	ICMPEchoRequest      = 8
	ICMPTimeExceeded     = 11
	ICMPParameterProblem = 12
)

// ICMP is a minimal ICMP header; Body carries the quoted original datagram
// for error messages (type 3/11/12).
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	Rest     uint32 // unused/identifier field
}

func (h *ICMP) marshal(b []byte) []byte {
	b = append(b, h.Type, h.Code)
	b = binary.BigEndian.AppendUint16(b, h.Checksum)
	b = binary.BigEndian.AppendUint32(b, h.Rest)
	return b
}

func (h *ICMP) computeChecksum(payload []byte) uint16 {
	msg := make([]byte, 0, 8+len(payload))
	saved := h.Checksum
	h.Checksum = 0
	msg = h.marshal(msg)
	h.Checksum = saved
	msg = append(msg, payload...)
	return internetChecksum(0, msg)
}
