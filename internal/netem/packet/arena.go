package packet

import "sync"

// Arena is a bump allocator for the short-lived objects the packet hot
// path churns through: Frames, parse blocks, built packets, and wire-byte
// buffers. One arena belongs to one simulated path (netem.Env) and is
// reset between replays, so an engagement converges to a near-constant
// allocation footprint — after the first replay warms the slabs, later
// replays allocate almost nothing.
//
// Ownership contract (see also DESIGN.md §13):
//
//   - Everything handed out by an arena — frames, parses, packets, byte
//     buffers, and any wire bytes or payload views aliasing them — is
//     valid only until the arena's next Reset.
//   - Reset may only be called at quiescence (no events pending on the
//     path's clock, no frames in flight) and after every consumer of the
//     previous replay's aliased bytes (the replay server's capture) has
//     been read.
//   - An arena is single-goroutine, like the Env that owns it. Forked
//     envs get their own fresh arena; pooled state never crosses forks.
//
// Reuse is index-based: Reset rewinds the slab cursors and clears the
// pointer-bearing slabs so stale references do not pin dead buffers, but
// the slabs themselves are retained at capacity.
type Arena struct {
	frames [][]Frame
	fi, fn int // slab index, used count within it
	parses [][]parseAlloc
	pi, pn int
	bufs   [][]byte
	bi, bn int // slab index, byte offset within it
	// bigs recycles allocations larger than a chunk (reassembled streams,
	// whole-trace buffers): each slot is dedicated to one allocation per
	// reset cycle, first fit by capacity.
	bigs []bigBuf
}

type bigBuf struct {
	b    []byte
	used bool
}

const (
	arenaFrameChunk = 512
	arenaParseChunk = 128
	// arenaByteChunk comfortably fits a run of MTU-sized wire buffers;
	// requests larger than a chunk fall through to the heap.
	arenaByteChunk = 1 << 16
)

// arenaPool recycles whole arenas across owners. Trial forks are born and
// die by the dozen per engagement; handing a dead fork's warmed slabs to
// the next fork removes the per-fork slab warmup that otherwise dominates
// the allocation profile.
//
// It is an explicit bounded free list rather than a sync.Pool: replay
// workloads allocate fast enough that the collector runs every few
// replays, and a sync.Pool is emptied within two cycles — discarding
// exactly the multi-megabyte warmed slabs the pool exists to keep. The
// list caps worst-case retention at arenaPoolCap warmed arenas.
var arenaPool struct {
	mu   sync.Mutex
	free []*Arena
}

const arenaPoolCap = 16

// NewArena returns an arena ready for use — possibly a recycled one with
// pre-grown slabs; slabs grow on demand either way.
func NewArena() *Arena {
	arenaPool.mu.Lock()
	if n := len(arenaPool.free); n > 0 {
		a := arenaPool.free[n-1]
		arenaPool.free[n-1] = nil
		arenaPool.free = arenaPool.free[:n-1]
		arenaPool.mu.Unlock()
		return a
	}
	arenaPool.mu.Unlock()
	return new(Arena)
}

// Release resets the arena and returns it to the process-wide pool for
// another owner. Unlike Reset, Release may hand the arena to a different
// goroutine, so it is legal only when nothing can still reference any
// arena-owned object — i.e. when the owning path is dead, not merely
// quiescent between replays.
func (a *Arena) Release() {
	a.Reset()
	arenaPool.mu.Lock()
	if len(arenaPool.free) < arenaPoolCap {
		arenaPool.free = append(arenaPool.free, a)
	}
	arenaPool.mu.Unlock()
}

// Reset invalidates every object the arena has handed out since the last
// Reset and rewinds all slabs for reuse. See the type comment for when
// calling it is legal.
func (a *Arena) Reset() {
	for i := 0; i <= a.fi && i < len(a.frames); i++ {
		clear(a.frames[i])
	}
	for i := 0; i <= a.pi && i < len(a.parses); i++ {
		clear(a.parses[i])
	}
	a.fi, a.fn = 0, 0
	a.pi, a.pn = 0, 0
	a.bi, a.bn = 0, 0
	for i := range a.bigs {
		a.bigs[i].used = false
	}
}

// frame hands out one uninitialized Frame slot.
func (a *Arena) frame() *Frame {
	if a.fi == len(a.frames) {
		a.frames = append(a.frames, make([]Frame, arenaFrameChunk))
	}
	slab := a.frames[a.fi]
	f := &slab[a.fn]
	a.fn++
	if a.fn == len(slab) {
		a.fi++
		a.fn = 0
	}
	return f
}

// parse hands out one zeroed parse block (packet plus transport headers).
func (a *Arena) parse() *parseAlloc {
	if a.pi == len(a.parses) {
		a.parses = append(a.parses, make([]parseAlloc, arenaParseChunk))
	}
	pa := &a.parses[a.pi][a.pn]
	a.pn++
	if a.pn == arenaParseChunk {
		a.pi++
		a.pn = 0
	}
	// Zero the slot: inspect and the builders fill fields piecemeal, and a
	// recycled slot must not leak state from its previous occupant.
	*pa = parseAlloc{}
	return pa
}

// buf hands out a zero-length slice with capacity n, capped so appends
// past n cannot clobber a neighbouring allocation. Contents reachable by
// re-slicing are undefined (recycled slabs are not cleared).
func (a *Arena) buf(n int) []byte {
	if n > arenaByteChunk {
		return a.big(n)
	}
	if a.bi == len(a.bufs) {
		a.bufs = append(a.bufs, make([]byte, arenaByteChunk))
	}
	if a.bn+n > arenaByteChunk {
		a.bi++
		a.bn = 0
		if a.bi == len(a.bufs) {
			a.bufs = append(a.bufs, make([]byte, arenaByteChunk))
		}
	}
	s := a.bufs[a.bi]
	b := s[a.bn : a.bn : a.bn+n]
	a.bn += n
	return b
}

// big hands out a dedicated recycled buffer for oversized allocations.
func (a *Arena) big(n int) []byte {
	for i := range a.bigs {
		if !a.bigs[i].used && cap(a.bigs[i].b) >= n {
			a.bigs[i].used = true
			return a.bigs[i].b[:0]
		}
	}
	b := make([]byte, 0, n)
	a.bigs = append(a.bigs, bigBuf{b: b, used: true})
	return b
}

// Bytes returns an n-byte buffer with undefined contents; the caller must
// overwrite all of it. cap == len, so appending grows a private copy.
func (a *Arena) Bytes(n int) []byte {
	return a.buf(n)[:n]
}

// Buffer returns an empty buffer with at least the given capacity, for
// callers that accumulate with append (stream reassembly, expected-byte
// concatenation). Like every arena allocation it is only valid until the
// next Reset.
func (a *Arena) Buffer(capacity int) []byte {
	return a.buf(capacity)
}

// NewFrame wraps raw in an arena-owned frame. Like packet.NewFrame, the
// frame takes ownership of raw; derived frames (TTL decrements,
// materialized copies, cached parses) draw from the same arena.
func (a *Arena) NewFrame(raw []byte) *Frame {
	f := a.frame()
	*f = Frame{raw: raw, ar: a}
	return f
}

// FrameOf serializes p into arena-owned wire bytes and wraps them in an
// arena-owned frame — the arena counterpart of packet.FrameOf. When p's
// payload sum is current (finalized and not rebound since), the frame
// carries it as a verification hint, so downstream parses of this
// stack-built frame skip the per-byte payload re-sum.
func (a *Arena) FrameOf(p *Packet) *Frame {
	f := a.frame()
	*f = Frame{raw: a.Wire(p), ar: a}
	if v, n, ok := p.paySumHint(); ok {
		f.psVal, f.psN = v, n
	}
	return f
}

// Wire serializes p into an arena-owned buffer — the arena counterpart of
// Packet.Serialize.
func (a *Arena) Wire(p *Packet) []byte {
	return p.AppendSerialize(a.buf(p.wireLen()))
}

// NewTCP builds a finalized TCP packet out of arena storage: the packet
// and its transport header live in the arena. The payload is ALIASED,
// not copied — sound under the repository-wide invariant (see
// paySumCache) that payload bytes are never mutated in place, and the
// builder's output is normally serialized (copied to wire bytes) within
// the same event anyway. Semantically identical to packet.NewTCP.
func (a *Arena) NewTCP(src, dst Addr, srcPort, dstPort uint16, seq, ack uint32, flags TCPFlags, payload []byte) *Packet {
	pa := a.parse()
	p := &pa.pkt
	p.IP = IPv4{TTL: DefaultTTL, Protocol: ProtoTCP, Src: src, Dst: dst}
	pa.tcp = TCP{
		SrcPort: srcPort, DstPort: dstPort,
		Seq: seq, Ack: ack, Flags: flags, Window: 65535,
	}
	p.TCP = &pa.tcp
	if len(payload) > 0 {
		p.Payload = payload
	}
	return p.Finalize()
}

// NewUDPSummed is NewUDP seeded with a precomputed payload partial sum
// (see NewTCPSummed).
func (a *Arena) NewUDPSummed(src, dst Addr, srcPort, dstPort uint16, payload []byte, paySum uint32) *Packet {
	pa := a.parse()
	p := &pa.pkt
	p.IP = IPv4{TTL: DefaultTTL, Protocol: ProtoUDP, Src: src, Dst: dst}
	pa.udp = UDP{SrcPort: srcPort, DstPort: dstPort}
	p.UDP = &pa.udp
	if len(payload) > 0 {
		p.Payload = payload
		p.paySum = paySumCache{ptr: &payload[0], n: len(payload), val: paySum}
	}
	return p.Finalize()
}

// NewTCPSummed is NewTCP with a precomputed payload partial sum (see
// PayloadSum): the packet's checksum cache is seeded before the first
// Finalize, so building the segment never walks the payload bytes.
func (a *Arena) NewTCPSummed(src, dst Addr, srcPort, dstPort uint16, seq, ack uint32, flags TCPFlags, payload []byte, paySum uint32) *Packet {
	pa := a.parse()
	p := &pa.pkt
	p.IP = IPv4{TTL: DefaultTTL, Protocol: ProtoTCP, Src: src, Dst: dst}
	pa.tcp = TCP{
		SrcPort: srcPort, DstPort: dstPort,
		Seq: seq, Ack: ack, Flags: flags, Window: 65535,
	}
	p.TCP = &pa.tcp
	if len(payload) > 0 {
		p.Payload = payload
		p.paySum = paySumCache{ptr: &payload[0], n: len(payload), val: paySum}
	}
	return p.Finalize()
}

// NewUDP builds a finalized UDP packet out of arena storage, aliasing the
// payload like NewTCP — the arena counterpart of packet.NewUDP.
func (a *Arena) NewUDP(src, dst Addr, srcPort, dstPort uint16, payload []byte) *Packet {
	pa := a.parse()
	p := &pa.pkt
	p.IP = IPv4{TTL: DefaultTTL, Protocol: ProtoUDP, Src: src, Dst: dst}
	pa.udp = UDP{SrcPort: srcPort, DstPort: dstPort}
	p.UDP = &pa.udp
	if len(payload) > 0 {
		p.Payload = payload
	}
	return p.Finalize()
}
