package packet

// Reassembler reconstructs IPv4 datagrams from fragments. It is a pure
// data structure: callers decide when to expire partial state (endpoints
// and in-path normalizers both embed one).
type Reassembler struct {
	buf map[fragKey]*fragState
	// OverlapFirstWins selects the RFC 815 hole-filling policy where bytes
	// already received are kept when a later fragment overlaps them.
	// The endpoints in this study all behave this way.
	OverlapFirstWins bool
}

type fragKey struct {
	src, dst Addr
	id       uint16
	proto    uint8
}

type fragState struct {
	data    []byte
	have    []bool
	total   int // -1 until the last fragment arrives
	hdr     []byte
	gotHead bool
}

// NewReassembler returns an empty reassembler with first-wins overlap
// policy.
func NewReassembler() *Reassembler {
	return &Reassembler{buf: make(map[fragKey]*fragState), OverlapFirstWins: true}
}

// Clone deep-copies the reassembler, including partially reassembled
// datagrams, so a forked simulation replica continues from the same
// fragment state without sharing buffers with the parent.
func (r *Reassembler) Clone() *Reassembler {
	c := &Reassembler{buf: make(map[fragKey]*fragState, len(r.buf)), OverlapFirstWins: r.OverlapFirstWins}
	for k, st := range r.buf {
		c.buf[k] = &fragState{
			data:    append([]byte(nil), st.data...),
			have:    append([]bool(nil), st.have...),
			total:   st.total,
			hdr:     append([]byte(nil), st.hdr...),
			gotHead: st.gotHead,
		}
	}
	return c
}

// Pending reports the number of datagrams with outstanding fragments.
func (r *Reassembler) Pending() int { return len(r.buf) }

// Flush discards all partial state.
func (r *Reassembler) Flush() { r.buf = make(map[fragKey]*fragState) }

// Add feeds one raw packet in. For non-fragments it returns (raw, true)
// unchanged. For fragments it returns (nil, false) until the datagram
// completes, at which point it returns the reassembled raw datagram.
func (r *Reassembler) Add(raw []byte) ([]byte, bool) {
	if len(raw) < 20 {
		return raw, true
	}
	// Zero-copy parse: nothing from p outlives this call — fragment bytes
	// are copied bytewise into the per-datagram buffer below.
	p, _ := InspectView(raw)
	if p.IP.FragOffset == 0 && !p.IP.MoreFragments() {
		return raw, true
	}
	key := fragKey{src: p.IP.Src, dst: p.IP.Dst, id: p.IP.ID, proto: p.IP.Protocol}
	st := r.buf[key]
	if st == nil {
		st = &fragState{total: -1}
		r.buf[key] = st
	}
	hdrLen := int(p.IP.IHL) * 4
	if hdrLen < 20 || hdrLen > len(raw) {
		hdrLen = 20
	}
	body := raw[hdrLen:]
	if int(p.IP.TotalLength) >= hdrLen && int(p.IP.TotalLength) <= len(raw) {
		body = raw[hdrLen:p.IP.TotalLength]
	}
	off := int(p.IP.FragOffset) * 8
	end := off + len(body)
	if end > len(st.data) {
		st.data = append(st.data, make([]byte, end-len(st.data))...)
		st.have = append(st.have, make([]bool, end-len(st.have))...)
	}
	for i, b := range body {
		if r.OverlapFirstWins && st.have[off+i] {
			continue
		}
		st.data[off+i] = b
		st.have[off+i] = true
	}
	if !p.IP.MoreFragments() {
		st.total = end
	}
	if p.IP.FragOffset == 0 {
		st.gotHead = true
		st.hdr = append(st.hdr[:0], raw[:hdrLen]...)
	}
	if st.total < 0 || !st.gotHead {
		return nil, false
	}
	for i := 0; i < st.total; i++ {
		if !st.have[i] {
			return nil, false
		}
	}
	delete(r.buf, key)
	// Rebuild the datagram bytewise from the head fragment's header so no
	// transport bytes are reinterpreted along the way.
	out := make([]byte, 0, len(st.hdr)+st.total)
	out = append(out, st.hdr...)
	out = append(out, st.data[:st.total]...)
	total := len(st.hdr) + st.total
	out[2] = byte(total >> 8)
	out[3] = byte(total)
	out[6] = 0 // clear flags (MF/DF) and high offset bits
	out[7] = 0
	out[10] = 0
	out[11] = 0
	cs := internetChecksum(0, out[:len(st.hdr)])
	out[10] = byte(cs >> 8)
	out[11] = byte(cs)
	return out, true
}
