// Package packet implements parsing, serialization, and validation of
// IPv4, TCP, UDP, and ICMP packets from scratch using only the standard
// library. The API follows the layered design popularized by gopacket:
// explicit header structs that serialize exactly what their fields say,
// plus a Finalize step that fills in lengths and checksums. Keeping
// serialization literal is what lets the evasion layer craft deliberately
// malformed ("inert") packets — a wrong checksum or an impossible header
// length round-trips through the wire format untouched.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Addr is an IPv4 address.
type Addr [4]byte

// AddrFrom parses a dotted-quad string; it panics on malformed input and is
// intended for literals in tests and topology construction.
func AddrFrom(s string) Addr {
	a, err := netip.ParseAddr(s)
	if err != nil || !a.Is4() {
		panic(fmt.Sprintf("packet: bad IPv4 literal %q", s))
	}
	return Addr(a.As4())
}

func (a Addr) String() string {
	return netip.AddrFrom4(a).String()
}

// IP protocol numbers used by the simulator.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4 option type codes recognized by the validator.
const (
	IPOptEOL         = 0
	IPOptNOP         = 1
	IPOptRecordRoute = 7
	IPOptTimestamp   = 68
	IPOptSecurity    = 130
	IPOptLSRR        = 131
	IPOptStreamID    = 136 // deprecated by RFC 6814
	IPOptSSRR        = 137
	IPOptRouterAlert = 148
)

// IPv4 is an IPv4 header. All fields serialize verbatim: setting Version=6
// or an inconsistent TotalLength produces exactly that malformed packet on
// the wire. Finalize fills the derived fields for well-formed packets.
type IPv4 struct {
	Version     uint8
	IHL         uint8 // header length in 32-bit words
	TOS         uint8
	TotalLength uint16
	ID          uint16
	Flags       uint8  // 3 bits: bit 0x1 = MF (more fragments), 0x2 = DF
	FragOffset  uint16 // in 8-byte units
	TTL         uint8
	Protocol    uint8
	Checksum    uint16
	Src, Dst    Addr
	Options     []byte // raw option bytes, padded by Finalize to a 4-byte multiple
}

// IP flag bits (stored in the low bits of Flags).
const (
	IPFlagMF = 0x1
	IPFlagDF = 0x2
)

// MoreFragments reports whether the MF bit is set.
func (h *IPv4) MoreFragments() bool { return h.Flags&IPFlagMF != 0 }

// headerLen returns the number of bytes the header actually occupies when
// serialized (20 + options), independent of the IHL field value.
func (h *IPv4) headerLen() int { return 20 + len(h.Options) }

// marshal appends the serialized header to b.
func (h *IPv4) marshal(b []byte) []byte {
	b = append(b, h.Version<<4|h.IHL&0x0f, h.TOS)
	b = binary.BigEndian.AppendUint16(b, h.TotalLength)
	b = binary.BigEndian.AppendUint16(b, h.ID)
	fo := uint16(h.Flags&0x7)<<13 | h.FragOffset&0x1fff
	b = binary.BigEndian.AppendUint16(b, fo)
	b = append(b, h.TTL, h.Protocol)
	b = binary.BigEndian.AppendUint16(b, h.Checksum)
	b = append(b, h.Src[:]...)
	b = append(b, h.Dst[:]...)
	b = append(b, h.Options...)
	return b
}

// computeChecksum returns the correct header checksum for the current field
// values (with the checksum field itself treated as zero). The field-wise
// summation mirrors marshal byte-for-byte — including the uint8 truncation
// of Version<<4 and the 3-bit Flags mask — so it is exactly equivalent to
// serializing the header and summing it, without the allocation.
func (h *IPv4) computeChecksum() uint16 {
	var c ckSum
	c.sum += uint32(h.Version<<4|h.IHL&0x0f)<<8 | uint32(h.TOS)
	c.sum += uint32(h.TotalLength) + uint32(h.ID)
	c.sum += uint32(uint16(h.Flags&0x7)<<13 | h.FragOffset&0x1fff)
	c.sum += uint32(h.TTL)<<8 | uint32(h.Protocol)
	// Checksum field counted as zero.
	c.sum += uint32(h.Src[0])<<8 | uint32(h.Src[1])
	c.sum += uint32(h.Src[2])<<8 | uint32(h.Src[3])
	c.sum += uint32(h.Dst[0])<<8 | uint32(h.Dst[1])
	c.sum += uint32(h.Dst[2])<<8 | uint32(h.Dst[3])
	c.add(h.Options)
	return c.finish()
}

// validOptions scans the option bytes and classifies them.
func validOptions(opts []byte) (invalid, deprecated bool) {
	i := 0
	for i < len(opts) {
		t := opts[i]
		switch t {
		case IPOptEOL:
			return invalid, deprecated
		case IPOptNOP:
			i++
			continue
		}
		if i+1 >= len(opts) {
			return true, deprecated
		}
		l := int(opts[i+1])
		if l < 2 || i+l > len(opts) {
			return true, deprecated
		}
		switch t {
		case IPOptRecordRoute, IPOptTimestamp, IPOptLSRR, IPOptSSRR, IPOptRouterAlert, IPOptSecurity:
			// known, acceptable
		case IPOptStreamID:
			deprecated = true
		default:
			invalid = true
		}
		i += l
	}
	return invalid, deprecated
}
