package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	srcA = AddrFrom("10.0.0.1")
	dstA = AddrFrom("192.168.1.2")
)

func TestTCPRoundTrip(t *testing.T) {
	p := NewTCP(srcA, dstA, 40000, 80, 1000, 2000, FlagACK|FlagPSH, []byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"))
	raw := p.Serialize()
	q, defects := Inspect(raw)
	if !defects.Empty() {
		t.Fatalf("finalized packet has defects: %v", defects)
	}
	if q.TCP == nil {
		t.Fatal("TCP header lost")
	}
	if q.TCP.SrcPort != 40000 || q.TCP.DstPort != 80 || q.TCP.Seq != 1000 || q.TCP.Ack != 2000 {
		t.Fatalf("header mismatch: %+v", q.TCP)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %q", q.Payload)
	}
	if q.IP.Src != srcA || q.IP.Dst != dstA {
		t.Fatalf("address mismatch: %v %v", q.IP.Src, q.IP.Dst)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := NewUDP(srcA, dstA, 5000, 3478, []byte{0, 1, 0, 8, 0x80, 0x55})
	q, defects := Inspect(p.Serialize())
	if !defects.Empty() {
		t.Fatalf("defects: %v", defects)
	}
	if q.UDP == nil || q.UDP.DstPort != 3478 {
		t.Fatalf("UDP header: %+v", q.UDP)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestSerializeParsePropertyTCP(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := NewTCP(srcA, dstA, srcPort, dstPort, seq, ack, FlagACK, payload)
		q, defects := Inspect(p.Serialize())
		return defects.Empty() &&
			q.TCP.SrcPort == srcPort && q.TCP.DstPort == dstPort &&
			q.TCP.Seq == seq && q.TCP.Ack == ack &&
			bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeParsePropertyUDP(t *testing.T) {
	f := func(srcPort, dstPort uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := NewUDP(srcA, dstA, srcPort, dstPort, payload)
		q, defects := Inspect(p.Serialize())
		return defects.Empty() &&
			q.UDP.SrcPort == srcPort && q.UDP.DstPort == dstPort &&
			bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// corrupt applies fn to a clone of a clean packet and returns its defects.
func corrupt(t *testing.T, fn func(*Packet)) DefectSet {
	t.Helper()
	p := NewTCP(srcA, dstA, 40000, 80, 1, 0, FlagACK, []byte("hello world payload"))
	q := p.Clone()
	fn(q)
	_, defects := Inspect(q.Serialize())
	return defects
}

func TestDefectDetection(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*Packet)
		want Defect
	}{
		{"version", func(p *Packet) { p.IP.Version = 6 }, DefectIPVersion},
		{"ihl", func(p *Packet) { p.IP.IHL = 3 }, DefectIPHeaderLength},
		{"total-long", func(p *Packet) { p.IP.TotalLength += 20 }, DefectIPTotalLengthLong},
		{"total-short", func(p *Packet) { p.IP.TotalLength -= 5 }, DefectIPTotalLengthShort},
		{"protocol", func(p *Packet) { p.IP.Protocol = 143 }, DefectIPProtocol},
		{"ip-checksum", func(p *Packet) { p.IP.Checksum ^= 0xffff }, DefectIPChecksum},
		{"tcp-checksum", func(p *Packet) { p.TCP.Checksum ^= 0x1234 }, DefectTCPChecksum},
		{"data-offset", func(p *Packet) { p.TCP.DataOffset = 15 }, DefectTCPDataOffset},
		{"flag-combo", func(p *Packet) { p.TCP.Flags = FlagSYN | FlagFIN }, DefectTCPFlagCombo},
		{"no-ack", func(p *Packet) { p.TCP.Flags = FlagPSH }, DefectTCPNoACK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defects := corrupt(t, tc.fn)
			if !defects.Has(tc.want) {
				t.Fatalf("defects = %v, want %v", defects, tc.want)
			}
		})
	}
}

func TestDefectDetectionNoFalsePositives(t *testing.T) {
	defects := corrupt(t, func(*Packet) {})
	if !defects.Empty() {
		t.Fatalf("clean packet flagged: %v", defects)
	}
}

func TestWrongProtocolKeepsBody(t *testing.T) {
	p := NewTCP(srcA, dstA, 40000, 80, 1, 0, FlagACK, []byte("GET /x HTTP/1.1\r\n"))
	p.IP.Protocol = 99
	p.IP.Checksum = p.IP.computeChecksum() // keep the rest valid
	q, defects := Inspect(p.Serialize())
	if !defects.Has(DefectIPProtocol) {
		t.Fatalf("missing proto defect: %v", defects)
	}
	if q.TCP != nil {
		t.Fatal("wrong-proto packet should not parse a TCP header")
	}
	// The transport header bytes + payload land in Payload.
	if !bytes.Contains(q.Payload, []byte("GET /x")) {
		t.Fatal("payload bytes lost")
	}
}

func TestUDPDefects(t *testing.T) {
	mk := func(fn func(*Packet)) DefectSet {
		p := NewUDP(srcA, dstA, 5000, 53, []byte("0123456789"))
		fn(p)
		_, d := Inspect(p.Serialize())
		return d
	}
	if d := mk(func(p *Packet) { p.UDP.Checksum ^= 0x4242 }); !d.Has(DefectUDPChecksum) {
		t.Fatalf("checksum: %v", d)
	}
	if d := mk(func(p *Packet) { p.UDP.Length += 7 }); !d.Has(DefectUDPLengthLong) {
		t.Fatalf("length-long: %v", d)
	}
	if d := mk(func(p *Packet) { p.UDP.Length -= 4 }); !d.Has(DefectUDPLengthShort) {
		t.Fatalf("length-short: %v", d)
	}
}

func TestIPOptions(t *testing.T) {
	base := func(opts []byte) DefectSet {
		p := NewTCP(srcA, dstA, 40000, 80, 1, 0, FlagACK, []byte("x"))
		p.IP.Options = opts
		p.Finalize()
		_, d := Inspect(p.Serialize())
		return d
	}
	// NOP padding: valid.
	if d := base([]byte{IPOptNOP, IPOptNOP, IPOptNOP, IPOptEOL}); !d.Empty() {
		t.Fatalf("nop options flagged: %v", d)
	}
	// Router alert: valid.
	if d := base([]byte{IPOptRouterAlert, 4, 0, 0}); !d.Empty() {
		t.Fatalf("router alert flagged: %v", d)
	}
	// Unknown option type: invalid.
	if d := base([]byte{0x99, 4, 0, 0}); !d.Has(DefectIPOptionInvalid) {
		t.Fatalf("unknown option not flagged: %v", d)
	}
	// Bad length: invalid.
	if d := base([]byte{IPOptRecordRoute, 0, 0, 0}); !d.Has(DefectIPOptionInvalid) {
		t.Fatalf("zero-length option not flagged: %v", d)
	}
	// Stream ID: deprecated.
	if d := base([]byte{IPOptStreamID, 4, 0, 1}); !d.Has(DefectIPOptionDeprecated) {
		t.Fatalf("stream id not flagged deprecated: %v", d)
	}
}

func TestTrailerPadding(t *testing.T) {
	p := NewTCP(srcA, dstA, 40000, 80, 1, 0, FlagACK, []byte("claimed"))
	p.TrailerPadding = []byte("surplus!")
	q, d := Inspect(p.Serialize())
	if !d.Has(DefectIPTotalLengthShort) {
		t.Fatalf("surplus bytes not flagged: %v", d)
	}
	if !bytes.Equal(q.Payload, []byte("claimed")) {
		t.Fatalf("claimed payload = %q", q.Payload)
	}
	if !bytes.Equal(q.TrailerPadding, []byte("surplus!")) {
		t.Fatalf("trailer = %q", q.TrailerPadding)
	}
}

func TestFragmentReassemblyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 5} {
		payload := make([]byte, 900)
		rng.Read(payload)
		p := NewTCP(srcA, dstA, 40000, 80, 55, 0, FlagACK, payload)
		p.IP.ID = 424
		p.Finalize()
		orig := p.Serialize()
		frags := Fragment(p, n)
		if len(frags) != n {
			t.Fatalf("got %d fragments, want %d", len(frags), n)
		}
		// Manual reassembly of the IP body.
		body := make([]byte, 0, len(orig))
		for _, f := range frags {
			off := int(f.IP.FragOffset) * 8
			need := off + len(f.Payload)
			if need > len(body) {
				body = append(body, make([]byte, need-len(body))...)
			}
			copy(body[off:], f.Payload)
		}
		if !bytes.Equal(body, orig[20:]) {
			t.Fatalf("n=%d reassembled body mismatch", n)
		}
		// MF set on all but last.
		for i, f := range frags {
			wantMF := i != len(frags)-1
			if f.IP.MoreFragments() != wantMF {
				t.Fatalf("frag %d MF=%v", i, f.IP.MoreFragments())
			}
			if _, d := Inspect(f.Serialize()); d.Has(DefectIPChecksum) || d.Has(DefectIPTotalLengthLong) {
				t.Fatalf("fragment %d malformed: %v", i, d)
			}
		}
	}
}

func TestFragmentFirstCarriesTransportHeader(t *testing.T) {
	p := NewTCP(srcA, dstA, 40000, 80, 9, 0, FlagACK, bytes.Repeat([]byte("a"), 600))
	frags := Fragment(p, 2)
	q, _ := Inspect(frags[0].Serialize())
	if q.TCP == nil || q.TCP.DstPort != 80 {
		t.Fatal("first fragment lost the TCP header view")
	}
	q2, _ := Inspect(frags[1].Serialize())
	if q2.TCP != nil {
		t.Fatal("second fragment should not parse a transport header")
	}
}

func TestClodeDeep(t *testing.T) {
	p := NewTCP(srcA, dstA, 1, 2, 3, 4, FlagACK, []byte("abc"))
	q := p.Clone()
	q.Payload[0] = 'z'
	q.TCP.SrcPort = 999
	if p.Payload[0] != 'a' || p.TCP.SrcPort != 1 {
		t.Fatal("Clone is shallow")
	}
}

func TestFlowKey(t *testing.T) {
	p := NewTCP(srcA, dstA, 40000, 80, 0, 0, FlagSYN, nil)
	k := p.Flow()
	if k.SrcPort != 40000 || k.DstPort != 80 || k.Proto != ProtoTCP {
		t.Fatalf("flow key: %v", k)
	}
	r := k.Reverse()
	if r.SrcPort != 80 || r.Src != dstA {
		t.Fatalf("reverse: %v", r)
	}
	c1, fwd1 := k.Canonical()
	c2, fwd2 := r.Canonical()
	if c1 != c2 {
		t.Fatalf("canonical keys differ: %v vs %v", c1, c2)
	}
	if fwd1 == fwd2 {
		t.Fatal("both orientations claim the same direction")
	}
}

func TestICMPTimeExceeded(t *testing.T) {
	orig := NewTCP(srcA, dstA, 40000, 80, 7, 0, FlagACK, []byte("data")).Serialize()
	router := AddrFrom("10.9.9.9")
	p := NewICMPTimeExceeded(router, srcA, orig)
	q, d := Inspect(p.Serialize())
	if !d.Empty() {
		t.Fatalf("defects: %v", d)
	}
	if q.ICMP == nil || q.ICMP.Type != ICMPTimeExceeded {
		t.Fatalf("ICMP: %+v", q.ICMP)
	}
	if len(q.Payload) != 28 {
		t.Fatalf("quoted %d bytes, want 28", len(q.Payload))
	}
}

func TestChecksumInvolution(t *testing.T) {
	// Verifying a correct checksum over header bytes yields zero.
	p := NewTCP(srcA, dstA, 1, 2, 3, 4, FlagACK, []byte("xyz"))
	raw := p.Serialize()
	if internetChecksum(0, raw[:20]) != 0 {
		t.Fatal("IP checksum does not self-verify")
	}
}

func TestFlagStrings(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Fatalf("got %q", s)
	}
	if s := TCPFlags(0).String(); s != "none" {
		t.Fatalf("got %q", s)
	}
}

func TestDefectSetOps(t *testing.T) {
	s := SetOf(DefectIPVersion, DefectTCPChecksum)
	if !s.Has(DefectIPVersion) || !s.Has(DefectTCPChecksum) || s.Has(DefectUDPChecksum) {
		t.Fatalf("set ops wrong: %v", s)
	}
	if len(s.Defects()) != 2 {
		t.Fatalf("defects list: %v", s.Defects())
	}
	if !s.Intersects(SetOf(DefectTCPChecksum)) || s.Intersects(SetOf(DefectUDPChecksum)) {
		t.Fatal("intersects wrong")
	}
	if AllDefects().Empty() {
		t.Fatal("AllDefects empty")
	}
}

func TestTruncatedInput(t *testing.T) {
	_, d := Inspect([]byte{1, 2, 3})
	if !d.Has(DefectTruncated) {
		t.Fatalf("short buffer: %v", d)
	}
}
