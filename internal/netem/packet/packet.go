package packet

import (
	"encoding/binary"
	"fmt"
)

// MTU is the maximum transmission unit assumed throughout the simulator.
const MTU = 1500

// MSS is the maximum transport segment payload the simulated stacks use:
// MTU minus 20 bytes of IPv4 header and 20 bytes of TCP header. Trace
// precomputation (trace.SegmentSums) and the stacks' segmentation loops
// must agree on it, which is why it lives here rather than in stack.
const MSS = MTU - 40

// Packet is a full IPv4 datagram: an IP header, at most one transport
// header, and an application payload. Exactly one of TCP, UDP, ICMP may be
// non-nil; when all are nil the payload sits directly above IP (used for
// wrong-protocol inert packets that still carry transport-shaped bytes in
// Payload).
type Packet struct {
	IP   IPv4
	TCP  *TCP
	UDP  *UDP
	ICMP *ICMP
	// Payload is the application payload above the transport header (or
	// above IP when no transport header is present).
	Payload []byte

	// TrailerPadding appends extra bytes after the payload on the wire
	// without being claimed by TotalLength. It exists so the
	// "total length shorter than payload" inert technique can be expressed
	// naturally: set TotalLength to the claimed size and put the surplus
	// here.
	TrailerPadding []byte

	// paySum memoizes the payload's checksum partial sum across repeated
	// Finalize/Fix*Checksum calls on the same packet, so single-field edits
	// don't re-sum a 1400-byte payload.
	paySum paySumCache

	// flowCK memoizes Flow().Canonical(): parse-cached packets are shared
	// read-only by every element on the path, and most elements key a
	// flow table by the canonical tuple on every hop.
	flowCK    FlowKey
	flowFwd   bool
	flowCKSet bool
}

// Clone returns a deep copy of p.
func (p *Packet) Clone() *Packet {
	q := *p
	q.paySum = paySumCache{}
	q.flowCKSet = false
	q.IP.Options = append([]byte(nil), p.IP.Options...)
	if p.TCP != nil {
		t := *p.TCP
		t.Options = append([]byte(nil), p.TCP.Options...)
		q.TCP = &t
	}
	if p.UDP != nil {
		u := *p.UDP
		q.UDP = &u
	}
	if p.ICMP != nil {
		ic := *p.ICMP
		q.ICMP = &ic
	}
	q.Payload = append([]byte(nil), p.Payload...)
	q.TrailerPadding = append([]byte(nil), p.TrailerPadding...)
	return &q
}

// transportLen returns the serialized length of the transport header.
func (p *Packet) transportLen() int {
	switch {
	case p.TCP != nil:
		return p.TCP.headerLen()
	case p.UDP != nil:
		return 8
	case p.ICMP != nil:
		return 8
	}
	return 0
}

// Finalize fills every derived field (version, header lengths, total
// length, UDP length, data offset, and all checksums) so that the packet
// serializes to a strictly valid wire format. Evasion techniques call
// Finalize first and then corrupt the one field they target.
func (p *Packet) Finalize() *Packet {
	// Pad options to 32-bit boundary.
	for len(p.IP.Options)%4 != 0 {
		p.IP.Options = append(p.IP.Options, IPOptEOL)
	}
	p.IP.Version = 4
	p.IP.IHL = uint8(p.IP.headerLen() / 4)
	total := p.IP.headerLen() + p.transportLen() + len(p.Payload)
	if total > 0xffff {
		// A packet that cannot be expressed in IPv4 is a caller bug;
		// silently wrapping the 16-bit length produces baffling failures.
		panic(fmt.Sprintf("packet: Finalize: datagram of %d bytes exceeds the IPv4 maximum", total))
	}
	p.IP.TotalLength = uint16(total)
	switch {
	case p.TCP != nil:
		for len(p.TCP.Options)%4 != 0 {
			p.TCP.Options = append(p.TCP.Options, 0)
		}
		p.TCP.DataOffset = uint8(p.TCP.headerLen() / 4)
	case p.UDP != nil:
		p.UDP.Length = uint16(8 + len(p.Payload))
	}
	p.FixTransportChecksum()
	p.IP.Checksum = p.IP.computeChecksum()
	return p
}

// FixTransportChecksum recomputes only the transport-layer checksum for the
// current field values, reusing the packet's cached payload sum when the
// payload slice is unchanged. Techniques that edit a single header field
// after Finalize use this instead of re-summing the whole segment.
func (p *Packet) FixTransportChecksum() {
	switch {
	case p.TCP != nil:
		p.TCP.Checksum = p.TCP.checksumWith(p.IP.Src, p.IP.Dst, p.Payload, &p.paySum)
	case p.UDP != nil:
		p.UDP.Checksum = p.UDP.checksumWith(p.IP.Src, p.IP.Dst, p.Payload, &p.paySum)
	case p.ICMP != nil:
		p.ICMP.Checksum = p.ICMP.checksumWith(p.Payload, &p.paySum)
	}
}

// FixIPChecksum recomputes only the IP header checksum for the current
// field values — equivalent to serializing the header and summing it.
func (p *Packet) FixIPChecksum() {
	p.IP.Checksum = p.IP.computeChecksum()
}

// paySumHint exposes the packet's cached payload partial sum when it is
// current — i.e. Finalize (or FixTransportChecksum) computed it for the
// exact slice Payload still points at. Frames serialized from such a
// packet carry the value so parse-side checksum verification can skip
// re-summing the payload copy: the wire payload is a byte-for-byte copy
// of the finalized payload, and both start 16-bit aligned in the
// checksummed stream, so the partial sums are identical. A packet whose
// Payload was rebound after Finalize (the documented way techniques
// change payloads) yields no hint and verification runs in full.
func (p *Packet) paySumHint() (val uint32, n int, ok bool) {
	if len(p.Payload) == 0 || p.paySum.ptr != &p.Payload[0] || p.paySum.n != len(p.Payload) {
		return 0, 0, false
	}
	return p.paySum.val, p.paySum.n, true
}

// wireLen returns the serialized size of the packet.
func (p *Packet) wireLen() int {
	return p.IP.headerLen() + p.transportLen() + len(p.Payload) + len(p.TrailerPadding)
}

// Serialize produces the literal wire bytes for the packet. No field is
// recomputed: whatever the header structs say is what goes on the wire.
func (p *Packet) Serialize() []byte {
	return p.AppendSerialize(make([]byte, 0, p.wireLen()))
}

// AppendSerialize appends the packet's wire bytes to b and returns the
// extended slice, letting hot paths reuse pooled or stack buffers.
func (p *Packet) AppendSerialize(b []byte) []byte {
	b = p.IP.marshal(b)
	switch {
	case p.TCP != nil:
		b = p.TCP.marshal(b)
	case p.UDP != nil:
		b = p.UDP.marshal(b)
	case p.ICMP != nil:
		b = p.ICMP.marshal(b)
	}
	b = append(b, p.Payload...)
	b = append(b, p.TrailerPadding...)
	return b
}

// seedPaySum primes the parse's payload-sum cache from a sender-carried
// hint (see paySumHint). The hint is taken only when the recovered
// payload length matches what the sender finalized — header mangling
// that shifts the payload boundary changes the length and falls back to
// a full verification sum.
func (p *Packet) seedPaySum(hintVal uint32, hintN int) {
	if hintN > 0 && len(p.Payload) == hintN {
		p.paySum = paySumCache{ptr: &p.Payload[0], n: hintN, val: hintVal}
	}
}

// parseAlloc is the single allocation backing one parse: the packet plus
// every transport header it could need. Inspect hands out interior pointers
// (&a.tcp etc.), so a full TCP parse costs one allocation for the structs
// and — in copy mode — one more for the payload.
type parseAlloc struct {
	pkt  Packet
	tcp  TCP
	udp  UDP
	icmp ICMP
}

// Inspect parses raw wire bytes into a Packet and reports every defect it
// finds. Parsing is best-effort: a malformed packet still yields the most
// plausible interpretation, because middleboxes differ in how much of a
// malformed packet they are willing to look at — that difference is the
// point of this library. The returned packet owns copies of its variable-
// length fields and is safe to mutate.
func Inspect(raw []byte) (*Packet, DefectSet) { return inspect(nil, raw, false, 0, 0) }

// InspectView parses like Inspect but zero-copy: the returned packet's
// Payload, Options, and TrailerPadding alias raw. The result is read-only —
// callers that want to mutate it must Clone first — and is only valid while
// raw itself stays unmodified (which Frame guarantees by construction).
func InspectView(raw []byte) (*Packet, DefectSet) { return inspect(nil, raw, true, 0, 0) }

// view returns b in alias mode and a copy in copy mode; empty slices
// normalize to nil in both modes so the two parses are interchangeable.
func view(alias bool, b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if alias {
		return b
	}
	return append([]byte(nil), b...)
}

// inspect parses raw. hintVal/hintN, when hintN > 0, carry the payload
// partial sum the sender's Finalize computed (see Packet.paySumHint);
// the transport parsers seed the parse's paySum cache with it when the
// recovered payload length matches, so verification of well-formed
// stack-built traffic costs no per-byte work.
func inspect(ar *Arena, raw []byte, alias bool, hintVal uint32, hintN int) (*Packet, DefectSet) {
	var defects DefectSet
	var a *parseAlloc
	if ar != nil {
		a = ar.parse()
	} else {
		a = &parseAlloc{}
	}
	p := &a.pkt
	if len(raw) < 20 {
		defects = defects.Add(DefectTruncated)
		return p, defects
	}
	h := &p.IP
	h.Version = raw[0] >> 4
	h.IHL = raw[0] & 0x0f
	h.TOS = raw[1]
	h.TotalLength = binary.BigEndian.Uint16(raw[2:4])
	h.ID = binary.BigEndian.Uint16(raw[4:6])
	fo := binary.BigEndian.Uint16(raw[6:8])
	h.Flags = uint8(fo >> 13)
	h.FragOffset = fo & 0x1fff
	h.TTL = raw[8]
	h.Protocol = raw[9]
	h.Checksum = binary.BigEndian.Uint16(raw[10:12])
	copy(h.Src[:], raw[12:16])
	copy(h.Dst[:], raw[16:20])

	if h.Version != 4 {
		defects = defects.Add(DefectIPVersion)
	}
	hdrLen := int(h.IHL) * 4
	if h.IHL < 5 || hdrLen > len(raw) {
		defects = defects.Add(DefectIPHeaderLength)
		hdrLen = 20 // best-effort fallback
	}
	if hdrLen > 20 {
		h.Options = view(alias, raw[20:hdrLen])
		inv, dep := validOptions(h.Options)
		if inv {
			defects = defects.Add(DefectIPOptionInvalid)
		}
		if dep {
			defects = defects.Add(DefectIPOptionDeprecated)
		}
	}
	// Verify header checksum over the claimed header bytes.
	if internetChecksum(0, raw[:hdrLen]) != 0 {
		defects = defects.Add(DefectIPChecksum)
	}
	// Total length consistency.
	claimed := int(h.TotalLength)
	switch {
	case claimed > len(raw):
		defects = defects.Add(DefectIPTotalLengthLong)
	case claimed < len(raw):
		defects = defects.Add(DefectIPTotalLengthShort)
		p.TrailerPadding = view(alias, raw[claimed:])
	}
	end := claimed
	if end > len(raw) || end < hdrLen {
		end = len(raw)
	}
	body := raw[hdrLen:end]

	// Fragments other than the first carry no parseable transport header.
	if h.FragOffset != 0 {
		p.Payload = view(alias, body)
		return p, defects
	}

	switch h.Protocol {
	case ProtoTCP:
		defects |= p.parseTCP(a, body, alias, hintVal, hintN)
	case ProtoUDP:
		defects |= p.parseUDP(a, body, alias, hintVal, hintN)
	case ProtoICMP:
		defects |= p.parseICMP(a, body, alias, hintVal, hintN)
	default:
		defects = defects.Add(DefectIPProtocol)
		p.Payload = view(alias, body)
	}
	return p, defects
}

func (p *Packet) parseTCP(a *parseAlloc, body []byte, alias bool, hintVal uint32, hintN int) DefectSet {
	var defects DefectSet
	if len(body) < 20 {
		p.Payload = view(alias, body)
		return defects.Add(DefectTruncated)
	}
	t := &a.tcp
	t.SrcPort = binary.BigEndian.Uint16(body[0:2])
	t.DstPort = binary.BigEndian.Uint16(body[2:4])
	t.Seq = binary.BigEndian.Uint32(body[4:8])
	t.Ack = binary.BigEndian.Uint32(body[8:12])
	t.DataOffset = body[12] >> 4
	t.Flags = TCPFlags(body[13])
	t.Window = binary.BigEndian.Uint16(body[14:16])
	t.Checksum = binary.BigEndian.Uint16(body[16:18])
	t.Urgent = binary.BigEndian.Uint16(body[18:20])
	p.TCP = t

	off := int(t.DataOffset) * 4
	if t.DataOffset < 5 || off > len(body) {
		defects = defects.Add(DefectTCPDataOffset)
		off = 20
	}
	if off > 20 {
		t.Options = view(alias, body[20:off])
	}
	p.Payload = view(alias, body[off:])
	p.seedPaySum(hintVal, hintN)

	// Checksums cannot be verified on a first fragment: the rest of the
	// segment is in later fragments.
	if !p.IP.MoreFragments() && t.checksumWith(p.IP.Src, p.IP.Dst, p.Payload, &p.paySum) != t.Checksum {
		defects = defects.Add(DefectTCPChecksum)
	}
	if t.Flags.invalid() {
		defects = defects.Add(DefectTCPFlagCombo)
	}
	if !t.Flags.Has(FlagACK) && !t.Flags.Has(FlagSYN) && !t.Flags.Has(FlagRST) && !t.Flags.invalid() {
		defects = defects.Add(DefectTCPNoACK)
	}
	return defects
}

func (p *Packet) parseUDP(a *parseAlloc, body []byte, alias bool, hintVal uint32, hintN int) DefectSet {
	var defects DefectSet
	if len(body) < 8 {
		p.Payload = view(alias, body)
		return defects.Add(DefectTruncated)
	}
	u := &a.udp
	u.SrcPort = binary.BigEndian.Uint16(body[0:2])
	u.DstPort = binary.BigEndian.Uint16(body[2:4])
	u.Length = binary.BigEndian.Uint16(body[4:6])
	u.Checksum = binary.BigEndian.Uint16(body[6:8])
	p.UDP = u
	p.Payload = view(alias, body[8:])
	p.seedPaySum(hintVal, hintN)
	if p.IP.MoreFragments() {
		// Length and checksum describe the full datagram; they cannot be
		// judged from a first fragment alone.
		return defects
	}
	switch {
	case int(u.Length) > len(body):
		defects = defects.Add(DefectUDPLengthLong)
	case int(u.Length) < len(body):
		defects = defects.Add(DefectUDPLengthShort)
	}
	if u.Checksum != 0 {
		want := u.checksumWith(p.IP.Src, p.IP.Dst, p.Payload, &p.paySum)
		if want != u.Checksum {
			defects = defects.Add(DefectUDPChecksum)
		}
	}
	return defects
}

func (p *Packet) parseICMP(a *parseAlloc, body []byte, alias bool, hintVal uint32, hintN int) DefectSet {
	var defects DefectSet
	if len(body) < 8 {
		p.Payload = view(alias, body)
		return defects.Add(DefectTruncated)
	}
	ic := &a.icmp
	ic.Type = body[0]
	ic.Code = body[1]
	ic.Checksum = binary.BigEndian.Uint16(body[2:4])
	ic.Rest = binary.BigEndian.Uint32(body[4:8])
	p.ICMP = ic
	p.Payload = view(alias, body[8:])
	p.seedPaySum(hintVal, hintN)
	if ic.checksumWith(p.Payload, &p.paySum) != ic.Checksum {
		// ICMP checksum errors are folded into the generic truncation
		// defect bucket; no middlebox in the study keyed on them.
		defects = defects.Add(DefectTruncated)
	}
	return defects
}

// FlowKey identifies a unidirectional flow.
type FlowKey struct {
	Proto            uint8
	Src, Dst         Addr
	SrcPort, DstPort uint16
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Proto: k.Proto, Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// Canonical returns a direction-independent key (the lexicographically
// smaller orientation) plus whether the original orientation was kept.
func (k FlowKey) Canonical() (FlowKey, bool) {
	r := k.Reverse()
	if less(k, r) {
		return k, true
	}
	return r, false
}

// Less is a total order over flow keys (the one Canonical uses), exposed
// for callers that need deterministic tie-breaking over key sets.
func (k FlowKey) Less(o FlowKey) bool { return less(k, o) }

func less(a, b FlowKey) bool {
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if a.Src != b.Src {
		return string(a.Src[:]) < string(b.Src[:])
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.Dst != b.Dst {
		return string(a.Dst[:]) < string(b.Dst[:])
	}
	return a.DstPort < b.DstPort
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%d %s:%d>%s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// CanonicalFlow returns the packet's direction-independent flow key and
// whether the packet's own orientation is the canonical one, memoized on
// the packet. Safe on parse-cached (immutable) packets; callers that
// mutate addressing fields must use Flow().Canonical() instead (Clone
// drops the memo).
func (p *Packet) CanonicalFlow() (FlowKey, bool) {
	if !p.flowCKSet {
		p.flowCK, p.flowFwd = p.Flow().Canonical()
		p.flowCKSet = true
	}
	return p.flowCK, p.flowFwd
}

// Flow extracts the packet's flow key. Port fields are zero for packets
// without a transport header.
func (p *Packet) Flow() FlowKey {
	k := FlowKey{Proto: p.IP.Protocol, Src: p.IP.Src, Dst: p.IP.Dst}
	switch {
	case p.TCP != nil:
		k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return k
}

func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		return fmt.Sprintf("TCP %s:%d>%s:%d seq=%d ack=%d %s len=%d ttl=%d",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort, p.TCP.Seq, p.TCP.Ack, p.TCP.Flags, len(p.Payload), p.IP.TTL)
	case p.UDP != nil:
		return fmt.Sprintf("UDP %s:%d>%s:%d len=%d ttl=%d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.Payload), p.IP.TTL)
	case p.ICMP != nil:
		return fmt.Sprintf("ICMP %s>%s type=%d code=%d", p.IP.Src, p.IP.Dst, p.ICMP.Type, p.ICMP.Code)
	}
	return fmt.Sprintf("IP %s>%s proto=%d len=%d", p.IP.Src, p.IP.Dst, p.IP.Protocol, len(p.Payload))
}
