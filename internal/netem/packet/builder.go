package packet

// DefaultTTL is the initial TTL used for well-formed packets.
const DefaultTTL = 64

// NewTCP builds a finalized TCP packet.
func NewTCP(src, dst Addr, srcPort, dstPort uint16, seq, ack uint32, flags TCPFlags, payload []byte) *Packet {
	p := &Packet{
		IP: IPv4{TTL: DefaultTTL, Protocol: ProtoTCP, Src: src, Dst: dst},
		TCP: &TCP{
			SrcPort: srcPort, DstPort: dstPort,
			Seq: seq, Ack: ack, Flags: flags, Window: 65535,
		},
		Payload: append([]byte(nil), payload...),
	}
	return p.Finalize()
}

// NewUDP builds a finalized UDP packet.
func NewUDP(src, dst Addr, srcPort, dstPort uint16, payload []byte) *Packet {
	p := &Packet{
		IP:      IPv4{TTL: DefaultTTL, Protocol: ProtoUDP, Src: src, Dst: dst},
		UDP:     &UDP{SrcPort: srcPort, DstPort: dstPort},
		Payload: append([]byte(nil), payload...),
	}
	return p.Finalize()
}

// NewICMPTimeExceeded builds the ICMP error a router emits when a packet's
// TTL expires. quoted is the offending datagram; per RFC 792 the first 28
// bytes (IP header + 8) are echoed back.
func NewICMPTimeExceeded(router, dst Addr, quoted []byte) *Packet {
	q := quoted
	if len(q) > 28 {
		q = q[:28]
	}
	p := &Packet{
		IP:      IPv4{TTL: DefaultTTL, Protocol: ProtoICMP, Src: router, Dst: dst},
		ICMP:    &ICMP{Type: ICMPTimeExceeded, Code: 0},
		Payload: append([]byte(nil), q...),
	}
	return p.Finalize()
}

// NewICMPProtoUnreachable builds the ICMP error an endpoint emits for an
// unknown transport protocol (type 3 code 2).
func NewICMPProtoUnreachable(host, dst Addr, quoted []byte) *Packet {
	q := quoted
	if len(q) > 28 {
		q = q[:28]
	}
	p := &Packet{
		IP:      IPv4{TTL: DefaultTTL, Protocol: ProtoICMP, Src: host, Dst: dst},
		ICMP:    &ICMP{Type: ICMPDestUnreachable, Code: 2},
		Payload: append([]byte(nil), q...),
	}
	return p.Finalize()
}

// FragmentAt splits a finalized, non-fragmented packet into IP fragments
// whose body boundaries fall at the given offsets (relative to the start
// of the IP body, i.e. the transport header). Offsets are rounded down to
// the 8-byte granularity FragOffset can express; out-of-range or
// non-increasing offsets are dropped. Evasion techniques use this to cut a
// matching field across fragment boundaries.
func FragmentAt(p *Packet, offsets []int) []*Packet {
	sb := getScratch()
	wire := p.AppendSerialize(*sb)
	defer func() { *sb = wire[:0]; putScratch(sb) }()
	hdrLen := p.IP.headerLen()
	body := wire[hdrLen:]
	var cuts []int
	prev := 0
	for _, off := range offsets {
		off = off / 8 * 8
		if off <= prev || off >= len(body) {
			continue
		}
		cuts = append(cuts, off)
		prev = off
	}
	cuts = append(cuts, len(body))
	var frags []*Packet
	start := 0
	for i, end := range cuts {
		last := i == len(cuts)-1
		f := &Packet{IP: p.IP}
		f.IP.Options = append([]byte(nil), p.IP.Options...)
		f.IP.FragOffset = uint16(start / 8)
		if last {
			f.IP.Flags &^= IPFlagMF
		} else {
			f.IP.Flags |= IPFlagMF
		}
		f.IP.Flags &^= IPFlagDF
		f.Payload = append([]byte(nil), body[start:end]...)
		f.IP.Version = 4
		f.IP.IHL = uint8(f.IP.headerLen() / 4)
		f.IP.TotalLength = uint16(f.IP.headerLen() + len(f.Payload))
		f.IP.Checksum = f.IP.computeChecksum()
		frags = append(frags, f)
		start = end
	}
	return frags
}

// Fragment splits a finalized, non-fragmented packet into n IP fragments.
// The transport header travels in the first fragment, as on a real wire.
// Fragment boundaries are 8-byte aligned as required by the FragOffset
// field encoding. It panics if the packet is too small to split n ways.
func Fragment(p *Packet, n int) []*Packet {
	if n < 2 {
		return []*Packet{p.Clone()}
	}
	sb := getScratch()
	wire := p.AppendSerialize(*sb)
	defer func() { *sb = wire[:0]; putScratch(sb) }()
	hdrLen := p.IP.headerLen()
	body := wire[hdrLen:]
	// Choose an 8-byte-aligned chunk size that yields n pieces.
	chunk := (len(body)/n + 7) / 8 * 8
	if chunk == 0 {
		chunk = 8
	}
	var frags []*Packet
	for off := 0; off < len(body); off += chunk {
		end := off + chunk
		last := false
		if end >= len(body) || len(frags) == n-1 {
			end = len(body)
			last = true
		}
		f := &Packet{IP: p.IP}
		f.IP.Options = append([]byte(nil), p.IP.Options...)
		f.IP.FragOffset = uint16(off / 8)
		if last {
			f.IP.Flags &^= IPFlagMF
		} else {
			f.IP.Flags |= IPFlagMF
		}
		f.IP.Flags &^= IPFlagDF
		f.Payload = append([]byte(nil), body[off:end]...)
		// Fragments are raw IP payload carriers: no transport struct. Set
		// derived fields by hand because Finalize would rebuild transport
		// headers we intentionally do not have.
		f.IP.Version = 4
		f.IP.IHL = uint8(f.IP.headerLen() / 4)
		f.IP.TotalLength = uint16(f.IP.headerLen() + len(f.Payload))
		f.IP.Checksum = f.IP.computeChecksum()
		frags = append(frags, f)
		if last {
			break
		}
	}
	return frags
}
