package packet

import (
	"bytes"
	"testing"
)

// Regression: less() once ignored Proto entirely, so a TCP and a UDP flow
// sharing addresses and ports collapsed into one ordering class. Two keys
// differing only in Proto must order strictly and consistently.
func TestFlowKeyLessProto(t *testing.T) {
	tcp := FlowKey{Src: srcA, Dst: dstA, SrcPort: 4000, DstPort: 80, Proto: ProtoTCP}
	udp := tcp
	udp.Proto = ProtoUDP
	if !less(tcp, udp) {
		t.Fatal("ProtoTCP (6) should order before ProtoUDP (17)")
	}
	if less(udp, tcp) {
		t.Fatal("ordering must be antisymmetric")
	}
	// Canonical forms of distinct-proto flows must stay distinct.
	c1, _ := tcp.Canonical()
	c2, _ := udp.Canonical()
	if c1 == c2 {
		t.Fatal("TCP and UDP flows canonicalized to the same key")
	}
}

func TestFrameParseCached(t *testing.T) {
	raw := NewTCP(srcA, dstA, 4000, 80, 1, 2, FlagACK, []byte("hello")).Serialize()
	f := NewFrame(raw)
	if f.Parsed() {
		t.Fatal("fresh frame claims a cached parse")
	}
	p1, d1 := f.Parse()
	p2, d2 := f.Parse()
	if p1 != p2 || d1 != d2 {
		t.Fatal("Parse is not cached: second call returned a different parse")
	}
	if !f.Parsed() {
		t.Fatal("Parsed() false after Parse()")
	}
	if !bytes.Equal(f.Raw(), raw) || f.Len() != len(raw) {
		t.Fatal("Raw/Len do not reflect the wire bytes")
	}
	if p1.TCP == nil || string(p1.Payload) != "hello" {
		t.Fatalf("cached parse wrong: %+v", p1)
	}
}

func TestInspectViewAliasesRaw(t *testing.T) {
	raw := NewTCP(srcA, dstA, 4000, 80, 1, 2, FlagACK, []byte("payload-bytes")).Serialize()
	v, _ := InspectView(raw)
	c, _ := Inspect(raw)
	if &v.Payload[0] != &raw[len(raw)-len(v.Payload)] {
		t.Fatal("InspectView payload does not alias the raw buffer")
	}
	if &c.Payload[0] == &raw[len(raw)-len(c.Payload)] {
		t.Fatal("Inspect payload aliases the raw buffer (must copy)")
	}
	if !bytes.Equal(v.Payload, c.Payload) {
		t.Fatal("view and copy parses disagree on payload")
	}
	// A view parse must be cloned before mutation; Clone detaches payload.
	q := v.Clone()
	if len(q.Payload) > 0 && &q.Payload[0] == &v.Payload[0] {
		t.Fatal("Clone did not detach the payload from the raw buffer")
	}
}

func TestWithTTLDecremented(t *testing.T) {
	p := NewTCP(srcA, dstA, 4000, 80, 9, 9, FlagACK, []byte("ttl-test"))
	p.IP.TTL = 17
	p.Finalize()
	f := NewFrame(p.Serialize())
	f.Parse() // populate the cache so the patched copy is exercised too

	g := f.WithTTLDecremented()
	if f.Raw()[8] != 17 {
		t.Fatal("original frame mutated")
	}
	if g.Raw()[8] != 16 {
		t.Fatalf("TTL not decremented: %d", g.Raw()[8])
	}
	// The RFC 1624 incremental patch must agree with a full recompute.
	q, d := Inspect(g.Raw())
	if d.Has(DefectIPChecksum) {
		t.Fatal("incremental checksum update produced an invalid header checksum")
	}
	if q.IP.TTL != 16 {
		t.Fatalf("parsed TTL %d, want 16", q.IP.TTL)
	}
	// The patched cached parse must match a fresh parse of the new bytes.
	gp, _ := g.Parse()
	if gp.IP.TTL != 16 || gp.IP.Checksum != q.IP.Checksum {
		t.Fatalf("cached parse out of sync: TTL=%d cs=%04x want TTL=16 cs=%04x",
			gp.IP.TTL, gp.IP.Checksum, q.IP.Checksum)
	}
}

// A deliberately wrong IP checksum must stay wrong (and keep its defect)
// across a TTL decrement — hops must not repair malformed packets.
func TestWithTTLDecrementedPreservesBadChecksum(t *testing.T) {
	p := NewTCP(srcA, dstA, 4000, 80, 9, 9, FlagACK, nil)
	p.IP.TTL = 44
	p.Finalize()
	p.IP.Checksum ^= 0x5555 // corrupt after finalize
	f := NewFrame(p.Serialize())
	if _, d := f.Parse(); !d.Has(DefectIPChecksum) {
		t.Fatal("setup: checksum not actually corrupt")
	}
	g := f.WithTTLDecremented()
	if _, d := g.Parse(); !d.Has(DefectIPChecksum) {
		t.Fatal("TTL decrement repaired a deliberately wrong checksum")
	}
	if q, d := Inspect(g.Raw()); !d.Has(DefectIPChecksum) || q.IP.TTL != 43 {
		t.Fatalf("wire bytes wrong: TTL=%d defects=%v", q.IP.TTL, d)
	}
}
