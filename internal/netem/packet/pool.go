package packet

import "sync"

// scratchPool recycles transient wire buffers for paths that serialize a
// packet only to immediately slice it apart or copy from it (fragmenting,
// reassembly). Borrowed buffers must not escape: everything kept from them
// is copied before putScratch returns the buffer.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MTU+64)
		return &b
	},
}

func getScratch() *[]byte { return scratchPool.Get().(*[]byte) }

func putScratch(b *[]byte) {
	*b = (*b)[:0]
	scratchPool.Put(b)
}
