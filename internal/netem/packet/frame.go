package packet

// Frame carries one datagram across the simulated path: the authoritative
// raw wire bytes plus a lazily computed, cached (Packet, DefectSet) parse.
// Elements that only route or delay a packet never trigger a parse; the
// first element that inspects it pays for exactly one zero-copy parse,
// and every later inspector — including the endpoint stacks — reuses it.
//
// Frames are logically immutable after construction: the wire bytes a frame
// denotes never change. Mutation happens by building a new packet (Clone +
// edits) and wrapping it in a new frame (FrameOf), which is the
// invalidate-on-write contract — a frame's parse can never go stale because
// the bytes it describes can never change. Immutability is also what makes
// frame sharing safe: duplicating links forward the same frame twice, taps
// retain it without copying, and retransmit queues re-wrap the same raw
// buffer.
//
// Internally a frame may carry pending TTL decrements that have not yet
// been applied to a private copy of the bytes (ttlDelta). Consecutive
// routers then share one buffer, and the copy + RFC 1624 checksum patches
// are applied once, by the first reader downstream. This is invisible to
// callers: Raw and Parse always present the fully patched bytes.
type Frame struct {
	raw      []byte
	ttlDelta uint8 // pending TTL decrements not yet applied to raw
	pkt      *Packet
	defects  DefectSet
	// ar, when non-nil, is the arena this frame was allocated from.
	// Derived allocations (TTL-decrement frames, materialized byte copies,
	// the cached parse) draw from the same arena, so a frame's whole
	// lifecycle shares its owner's reset boundary.
	ar *Arena
	// psVal/psN carry the sender's payload partial sum (Packet.paySumHint)
	// when the frame was serialized from a finalized packet; psN == 0 means
	// no hint. Parse seeds its checksum verification from it.
	psVal uint32
	psN   int
}

// NewFrame wraps raw wire bytes in a frame. The frame takes ownership:
// the caller must not modify raw afterwards.
func NewFrame(raw []byte) *Frame { return &Frame{raw: raw} }

// FrameOf serializes p into a fresh frame. The parse cache starts empty
// rather than adopting p, because p's fields may disagree with its own
// wire bytes in exactly the ways defect detection exists to notice.
func FrameOf(p *Packet) *Frame { return &Frame{raw: p.Serialize()} }

// materialize applies any pending TTL decrements to a private copy of the
// bytes. Decrements are replayed one at a time so the resulting checksum
// bytes are bit-identical to a chain of per-hop updates. A parse inherited
// from the pre-decrement frame is carried across by shallow-copying it and
// patching the two fields a router changes — the defect set is TTL-invariant
// under an incremental update, so it transfers untouched.
func (f *Frame) materialize() {
	if f.ttlDelta == 0 {
		return
	}
	var out []byte
	if f.ar != nil {
		out = f.ar.Bytes(len(f.raw))
	} else {
		out = make([]byte, len(f.raw))
	}
	copy(out, f.raw)
	for i := uint8(0); i < f.ttlDelta; i++ {
		decrementTTL(out)
	}
	f.raw, f.ttlDelta = out, 0
	if f.pkt != nil {
		// Transport headers, options, and payload stay shared with the
		// parent's parse — safe because both are read-only views over
		// byte-identical regions.
		var q *Packet
		if f.ar != nil {
			q = &f.ar.parse().pkt
		} else {
			q = &Packet{}
		}
		*q = *f.pkt
		q.IP.TTL = out[8]
		q.IP.Checksum = uint16(out[10])<<8 | uint16(out[11])
		f.pkt = q
	}
}

// Raw returns the wire bytes. Callers must treat them as read-only.
func (f *Frame) Raw() []byte {
	f.materialize()
	return f.raw
}

// Len returns the wire length.
func (f *Frame) Len() int { return len(f.raw) }

// TTL returns the effective IP TTL byte without materializing pending
// decrements. Only valid on frames of at least 20 bytes.
func (f *Frame) TTL() uint8 { return f.raw[8] - f.ttlDelta }

// Parse returns the cached parse of the frame, computing it on first use.
// The returned packet is a read-only view whose Payload and Options alias
// the frame's raw bytes; callers that want to mutate it must Clone first.
func (f *Frame) Parse() (*Packet, DefectSet) {
	if f.pkt == nil {
		f.materialize()
		f.pkt, f.defects = inspect(f.ar, f.raw, true, f.psVal, f.psN)
	}
	return f.pkt, f.defects
}

// Parsed reports whether the parse cache is populated.
func (f *Frame) Parsed() bool { return f.pkt != nil }

// WithTTLDecremented returns a new frame whose TTL is one lower, with the
// IP header checksum incrementally updated per RFC 1624. The update
// preserves checksum *wrongness*: a deliberately corrupted checksum stays
// exactly as wrong after the hop, just as through a real router. The frame
// must hold at least a 20-byte IP header (routers discard shorter garbage
// before decrementing).
//
// The decrement is always lazy: the new frame shares the raw buffer (and
// any cached parse) with its parent and just records one more pending
// decrement, so a run of routers costs one small allocation per hop and
// zero copies. The first downstream reader pays for one copy and — when the
// parent had a warm parse — one shallow parse patch, so a datagram still
// parses at most once across any number of routers.
func (f *Frame) WithTTLDecremented() *Frame {
	if f.ar != nil {
		nf := f.ar.frame()
		*nf = Frame{raw: f.raw, ttlDelta: f.ttlDelta + 1, pkt: f.pkt, defects: f.defects, ar: f.ar, psVal: f.psVal, psN: f.psN}
		return nf
	}
	return &Frame{raw: f.raw, ttlDelta: f.ttlDelta + 1, pkt: f.pkt, defects: f.defects, psVal: f.psVal, psN: f.psN}
}

// decrementTTL lowers the TTL byte in place and incrementally updates the
// header checksum per RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m').
func decrementTTL(raw []byte) {
	oldWord := uint16(raw[8])<<8 | uint16(raw[9])
	raw[8]--
	newWord := uint16(raw[8])<<8 | uint16(raw[9])
	hc := uint16(raw[10])<<8 | uint16(raw[11])
	sum := uint32(^hc) + uint32(^oldWord) + uint32(newWord)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	hc = ^uint16(sum)
	raw[10] = byte(hc >> 8)
	raw[11] = byte(hc)
}
