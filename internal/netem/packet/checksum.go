package packet

import "encoding/binary"

// sumWords adds data's 16-bit big-endian words (paired starting at offset
// 0) to an unfolded partial sum, eight bytes per step. Splitting each
// 64-bit load into four words and adding them is bit-identical to the
// byte-pair loop — one's-complement addition is commutative and the
// 32-bit accumulator cannot overflow (≤ 32 Ki words per datagram, so the
// unfolded sum stays below 2^31). A trailing odd byte is NOT consumed
// here; the caller pairs or pads it.
func sumWords(sum uint32, data []byte) uint32 {
	i, n := 0, len(data)
	for ; i+8 <= n; i += 8 {
		v := binary.BigEndian.Uint64(data[i:])
		sum += uint32(v>>48) + uint32(v>>32&0xffff) + uint32(v>>16&0xffff) + uint32(v&0xffff)
	}
	for ; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	return sum
}

// internetChecksum computes the RFC 1071 Internet checksum over data,
// starting from an initial partial sum. The result is the one's-complement
// of the one's-complement sum.
func internetChecksum(initial uint32, data []byte) uint16 {
	sum := sumWords(initial, data)
	if n := len(data); n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// PayloadSum returns the unfolded RFC 1071 partial sum of b with a
// trailing odd byte padded as its own high-order word — exactly the value
// the per-packet checksum cache stores, so builders can be seeded with it
// (Arena.NewTCPSummed) and never re-sum a precomputed payload.
func PayloadSum(b []byte) uint32 {
	sum := sumWords(0, b)
	if n := len(b); n%2 == 1 {
		sum += uint32(b[n-1]) << 8
	}
	return sum
}

// pseudoHeaderSum returns the partial checksum of the TCP/UDP pseudo-header.
func pseudoHeaderSum(src, dst Addr, proto uint8, length uint16) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// ckSum accumulates an Internet checksum over a sequence of byte chunks as
// if they were one concatenated buffer, without materializing that buffer.
// A trailing odd byte of one chunk pairs with the first byte of the next,
// so checksumming marshal output piecewise gives bit-identical results to
// marshal-then-sum — which matters because parse-time verification must
// agree exactly with Finalize for deliberately malformed packets.
//
// A 32-bit accumulator cannot overflow here: an IPv4 datagram holds at most
// 32 Ki 16-bit words, bounding the unfolded sum below 2^31.
type ckSum struct {
	sum     uint32
	odd     bool
	oddByte byte
}

// add appends data to the running sum. The loop accumulates into a local
// so the compiler keeps it in a register instead of spilling through the
// receiver pointer each iteration.
func (c *ckSum) add(data []byte) {
	n := len(data)
	if c.odd && n > 0 {
		c.sum += uint32(c.oddByte)<<8 | uint32(data[0])
		c.odd = false
		data = data[1:]
		n--
	}
	c.sum = sumWords(c.sum, data)
	if n%2 == 1 {
		c.odd, c.oddByte = true, data[n-1]
	}
}

// addPayload appends the application payload, consulting cache for a
// previously computed partial sum of the identical slice. The cache is
// only usable when the payload starts 16-bit aligned in the checksummed
// stream (always true after Finalize pads options, and for the fixed-size
// UDP/ICMP headers).
func (c *ckSum) addPayload(payload []byte, cache *paySumCache) {
	if c.odd || cache == nil {
		c.add(payload)
		return
	}
	c.sum += cache.sumOf(payload)
}

// finish folds the accumulator and returns the one's-complement checksum.
func (c *ckSum) finish() uint16 {
	sum := c.sum
	if c.odd {
		sum += uint32(c.oddByte) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// paySumCache memoizes the unfolded checksum partial sum of one payload
// slice, keyed by slice identity (base pointer + length). Techniques edit
// single header fields between checksum fix-ups but never mutate payload
// bytes in place — payload changes always rebind the Payload field to a
// fresh slice (Clone, dummyBytes), which misses the identity check and
// recomputes. That makes identity a sound cache key.
type paySumCache struct {
	ptr *byte
	n   int
	val uint32
}

// sumOf returns the unfolded partial sum of payload, cached.
func (pc *paySumCache) sumOf(payload []byte) uint32 {
	if len(payload) == 0 {
		return 0
	}
	if pc.ptr == &payload[0] && pc.n == len(payload) {
		return pc.val
	}
	var c ckSum
	c.add(payload)
	v := c.sum
	if c.odd {
		v += uint32(c.oddByte) << 8
	}
	pc.ptr, pc.n, pc.val = &payload[0], len(payload), v
	return v
}
