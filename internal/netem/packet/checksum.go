package packet

// internetChecksum computes the RFC 1071 Internet checksum over data,
// starting from an initial partial sum. The result is the one's-complement
// of the one's-complement sum.
func internetChecksum(initial uint32, data []byte) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum returns the partial checksum of the TCP/UDP pseudo-header.
func pseudoHeaderSum(src, dst Addr, proto uint8, length uint16) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}
