package vclock

import (
	"testing"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	c := New()
	var got []int
	c.Schedule(3*time.Second, func() { got = append(got, 3) })
	c.Schedule(1*time.Second, func() { got = append(got, 1) })
	c.Schedule(2*time.Second, func() { got = append(got, 2) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Since(Epoch) != 3*time.Second {
		t.Fatalf("clock advanced to %v, want 3s", c.Since(Epoch))
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	c := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, func() { got = append(got, i) })
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New()
	var fired []time.Duration
	c.Schedule(time.Second, func() {
		fired = append(fired, c.Since(Epoch))
		c.Schedule(time.Second, func() {
			fired = append(fired, c.Since(Epoch))
		})
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	c := New()
	ran := false
	tm := c.Schedule(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for live timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("stopped timer fired")
	}
}

func TestRunUntil(t *testing.T) {
	c := New()
	var got []int
	c.Schedule(1*time.Second, func() { got = append(got, 1) })
	c.Schedule(5*time.Second, func() { got = append(got, 5) })
	if err := c.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v after RunFor(2s)", got)
	}
	if c.Since(Epoch) != 2*time.Second {
		t.Fatalf("clock at %v, want 2s", c.Since(Epoch))
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != 5 {
		t.Fatalf("got %v after Run", got)
	}
}

func TestRunUntilAdvancesWithNoEvents(t *testing.T) {
	c := New()
	if err := c.RunFor(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Since(Epoch) != 10*time.Minute {
		t.Fatalf("clock at %v, want 10m", c.Since(Epoch))
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	c := New()
	ran := false
	c.Schedule(-time.Hour, func() { ran = true })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("negative-delay event did not fire")
	}
	if !c.Now().Equal(Epoch) {
		t.Fatalf("clock moved to %v", c.Now())
	}
}

func TestBudget(t *testing.T) {
	c := New()
	c.Budget = 100
	var loop func()
	loop = func() { c.Schedule(time.Millisecond, loop) }
	c.Schedule(0, loop)
	if err := c.Run(); err == nil {
		t.Fatal("runaway loop did not trip the budget")
	}
}

func TestHourOfDay(t *testing.T) {
	c := New()
	if h := c.HourOfDay(); h != 0 {
		t.Fatalf("epoch hour = %v, want 0", h)
	}
	if err := c.RunFor(26*time.Hour + 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	if h := c.HourOfDay(); h < 2.49 || h > 2.51 {
		t.Fatalf("hour = %v, want 2.5", h)
	}
}

func TestPending(t *testing.T) {
	c := New()
	tm := c.Schedule(time.Second, func() {})
	c.Schedule(2*time.Second, func() {})
	if n := c.Pending(); n != 2 {
		t.Fatalf("Pending = %d, want 2", n)
	}
	tm.Stop()
	if n := c.Pending(); n != 1 {
		t.Fatalf("Pending after Stop = %d, want 1", n)
	}
}
