package vclock

import (
	"testing"
	"time"
)

func TestForkCarriesInstantAndCounters(t *testing.T) {
	c := New()
	c.Schedule(90*time.Minute, func() {})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	f := c.Fork()
	if f.Now() != c.Now() {
		t.Fatalf("fork at %v, parent at %v", f.Now(), c.Now())
	}
	if f.seq != c.seq || f.fired != c.fired || f.Budget != c.Budget {
		t.Fatalf("fork counters (seq=%d fired=%d budget=%d) diverge from parent (seq=%d fired=%d budget=%d)",
			f.seq, f.fired, f.Budget, c.seq, c.fired, c.Budget)
	}
	if f.Pending() != 0 {
		t.Fatalf("fork has %d pending events, want empty queue", f.Pending())
	}
}

func TestForkAdvancesIndependently(t *testing.T) {
	c := New()
	c.RunFor(time.Hour)
	f := c.Fork()
	f.RunFor(30 * time.Minute)
	if c.Since(Epoch) != time.Hour {
		t.Fatalf("parent moved to %v when fork advanced", c.Since(Epoch))
	}
	if f.Since(Epoch) != 90*time.Minute {
		t.Fatalf("fork at %v, want 90m", f.Since(Epoch))
	}
	// And the other direction: parent advancement leaves the fork alone.
	c.RunFor(time.Hour)
	if f.Since(Epoch) != 90*time.Minute {
		t.Fatalf("fork moved to %v when parent advanced", f.Since(Epoch))
	}
}

func TestForkLeavesPendingEventsWithParent(t *testing.T) {
	c := New()
	fired := false
	c.Schedule(time.Second, func() { fired = true })
	f := c.Fork()
	if f.Pending() != 0 {
		t.Fatalf("fork inherited %d pending events", f.Pending())
	}
	f.RunFor(2 * time.Second)
	if fired {
		t.Fatal("running the fork fired an event scheduled on the parent")
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("parent lost its pending event across Fork")
	}
}

// TestForkTieBreakParity is the determinism property Fork's seq copy
// exists for: events scheduled at equal instants on a fork fire in the
// same order a serial continuation of the parent would have fired them.
func TestForkTieBreakParity(t *testing.T) {
	run := func(c *Clock) []int {
		var got []int
		c.Schedule(time.Second, func() { got = append(got, 1) })
		c.Schedule(time.Second, func() { got = append(got, 2) })
		c.Schedule(time.Second, func() { got = append(got, 3) })
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial := New()
	serial.RunFor(time.Minute)
	wantOrder := run(serial)

	parent := New()
	parent.RunFor(time.Minute)
	gotOrder := run(parent.Fork())
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("fork fired %v, serial continuation fired %v", gotOrder, wantOrder)
		}
	}
}
