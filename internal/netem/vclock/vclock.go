// Package vclock implements a deterministic discrete-event virtual clock.
//
// All simulated components in this repository schedule work against a
// *Clock instead of the wall clock. This keeps every experiment — including
// the paper's two-day Figure 4 sweep and the 240-second classification-flush
// probes — deterministic and able to run in milliseconds of real time.
//
// The clock is single-threaded by design: Run drains the event queue in
// timestamp order, and ties are broken by insertion order so that repeated
// runs of the same experiment produce byte-identical results.
//
// Internally time is an int64 nanosecond offset from Epoch and the queue is
// a hand-rolled binary heap of recycled event records: the scheduler sits
// on the per-packet hot path (every link traversal is one event), so heap
// comparisons are two integer compares and firing an event allocates
// nothing once the free list is warm.
package vclock

import (
	"fmt"
	"time"
)

// Event is a scheduled callback: either a plain thunk (fn) or a static
// function plus argument (callFn/arg). The two-field form lets hot callers
// schedule without materializing a fresh closure per event.
type event struct {
	gen    uint32 // bumped on reuse so stale Timers cannot cancel the new tenant
	dead   bool
	fn     func()
	callFn func(any)
	arg    any
}

// heapNode keeps the ordering key inline in the heap slice so comparisons
// never dereference the event record — sift operations stay in one cache
// line per level.
type heapNode struct {
	at  int64  // nanoseconds since Epoch
	seq uint64 // insertion order, breaks timestamp ties deterministically
	e   *event
}

func (a heapNode) before(b heapNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a hand-rolled 4-ary min-heap ordered by (at, seq);
// container/heap's interface dispatch in Less/Swap dominated simulation
// profiles, and a branching factor of 4 halves the sift-down depth of a
// binary heap, which matters because pop (sift-down) runs once per
// simulated event. Heap shape does not affect output: before() is a
// total order ((at, seq) pairs are unique), so any min-heap pops events
// in the identical deterministic sequence.
const heapArity = 4

type eventQueue []heapNode

func (q *eventQueue) push(n heapNode) {
	*q = append(*q, n)
	s := *q
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (q *eventQueue) pop() heapNode {
	s := *q
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = heapNode{}
	s = s[:n]
	*q = s
	i := 0
	for {
		l := heapArity*i + 1
		if l >= n {
			break
		}
		// Find the smallest of up to heapArity children.
		child := l
		hi := l + heapArity
		if hi > n {
			hi = n
		}
		for c := l + 1; c < hi; c++ {
			if s[c].before(s[child]) {
				child = c
			}
		}
		if !s[child].before(s[i]) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return top
}

// Timer is a handle to a scheduled event that can be cancelled. The handle
// remembers the event's generation so a Stop after the event has fired and
// its record has been recycled is a safe no-op.
type Timer struct {
	e   *event
	gen uint32
}

// Stop cancels the timer. Stopping an already-fired or already-stopped
// timer is a no-op. It reports whether the call prevented the event from
// firing.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.gen != t.gen || t.e.dead {
		return false
	}
	t.e.dead = true
	t.e.fn = nil
	t.e.callFn, t.e.arg = nil, nil
	return true
}

// Clock is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with New.
type Clock struct {
	now   int64 // nanoseconds since Epoch
	queue eventQueue
	free  []*event // recycled event records
	seq   uint64
	// Budget guards against runaway simulations: Run stops with an error
	// after this many events when > 0.
	Budget int
	fired  int
}

// Epoch is the instant at which every new Clock starts. Using a fixed,
// recognizable epoch (midnight UTC) makes time-of-day experiments such as
// the Figure 4 sweep easy to express.
var Epoch = time.Date(2017, time.November, 1, 0, 0, 0, 0, time.UTC)

// New returns a clock positioned at Epoch with an empty event queue.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return Epoch.Add(time.Duration(c.now)) }

// NowNS returns the current virtual time as integer nanoseconds since
// Epoch — the timestamp form observability events carry.
func (c *Clock) NowNS() int64 { return c.now }

// Seq returns the insertion-order counter, which advances on every
// schedule call. Batching callers (netem's delivery runs) use it as a
// fence: a batch may only be extended while Seq is unchanged since the
// batch was scheduled, which proves no other event slotted in between the
// batched records' would-have-been queue positions.
func (c *Clock) Seq() uint64 { return c.seq }

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Schedule runs fn after d of virtual time has elapsed. A negative d is
// treated as zero. The returned Timer may be used to cancel the event; it
// is returned by value so callers that discard it cost no allocation.
func (c *Clock) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return c.scheduleNS(c.now+int64(d), fn, nil, nil)
}

// ScheduleArg runs fn(arg) after d of virtual time has elapsed. It behaves
// like Schedule but keeps the callback and its state separate, so a caller
// on the per-packet hot path can pass a long-lived function value and a
// recycled argument record instead of allocating a closure per event.
func (c *Clock) ScheduleArg(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return c.scheduleNS(c.now+int64(d), nil, fn, arg)
}

// ScheduleAt runs fn at the absolute virtual instant at. Instants in the
// past are clamped to the present.
func (c *Clock) ScheduleAt(at time.Time, fn func()) Timer {
	return c.scheduleNS(int64(at.Sub(Epoch)), fn, nil, nil)
}

func (c *Clock) scheduleNS(at int64, fn func(), callFn func(any), arg any) Timer {
	if at < c.now {
		at = c.now
	}
	c.seq++
	var e *event
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		e.gen++
		e.dead = false
	} else {
		e = &event{}
	}
	e.fn, e.callFn, e.arg = fn, callFn, arg
	c.queue.push(heapNode{at: at, seq: c.seq, e: e})
	return Timer{e: e, gen: e.gen}
}

// recycle returns a popped event record to the free list.
func (c *Clock) recycle(e *event) {
	e.fn = nil
	e.callFn, e.arg = nil, nil
	e.dead = true
	c.free = append(c.free, e)
}

// Fork returns a new clock positioned at the same virtual instant, with
// the same insertion-order counter, event budget, and fired count — and an
// empty event queue. Pending events stay with the parent: forking is only
// meaningful at quiescence (between replays), when nothing is scheduled;
// a fork taken mid-replay would silently drop the in-flight events, so
// callers that cannot guarantee quiescence must drain the queue first.
//
// Copying seq keeps the fork's timestamp tie-breaking behaviour aligned
// with a hypothetical serial continuation of the parent, which is part of
// why forked evaluation reproduces serial results byte-for-byte.
func (c *Clock) Fork() *Clock {
	return &Clock{now: c.now, seq: c.seq, Budget: c.Budget, fired: c.fired}
}

// Pending reports the number of live events in the queue.
func (c *Clock) Pending() int {
	n := 0
	for _, node := range c.queue {
		if !node.e.dead {
			n++
		}
	}
	return n
}

// step fires the earliest event. It reports false when the queue is empty.
func (c *Clock) step() (bool, error) {
	for len(c.queue) > 0 {
		node := c.queue.pop()
		e := node.e
		if e.dead {
			c.recycle(e)
			continue
		}
		if node.at < c.now {
			at := Epoch.Add(time.Duration(node.at))
			return false, fmt.Errorf("vclock: event scheduled at %v before now %v", at, c.Now())
		}
		c.now = node.at
		c.fired++
		if c.Budget > 0 && c.fired > c.Budget {
			return false, fmt.Errorf("vclock: event budget %d exhausted at %v", c.Budget, c.Now())
		}
		fn, callFn, arg := e.fn, e.callFn, e.arg
		c.recycle(e)
		if callFn != nil {
			callFn(arg)
		} else {
			fn()
		}
		return true, nil
	}
	return false, nil
}

// Run drains the event queue until it is empty, advancing virtual time as
// it goes. Events scheduled by running events are processed too.
func (c *Clock) Run() error {
	for {
		ok, err := c.step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// RunUntil drains events whose timestamp is at or before deadline, then
// advances the clock to deadline. Events beyond the deadline stay queued.
func (c *Clock) RunUntil(deadline time.Time) error {
	deadNS := int64(deadline.Sub(Epoch))
	for {
		if len(c.queue) == 0 {
			break
		}
		// Peek at the earliest live event.
		live := false
		var nextAt int64
		for len(c.queue) > 0 {
			if c.queue[0].e.dead {
				c.recycle(c.queue.pop().e)
				continue
			}
			live, nextAt = true, c.queue[0].at
			break
		}
		if !live || nextAt > deadNS {
			break
		}
		if _, err := c.step(); err != nil {
			return err
		}
	}
	if c.now < deadNS {
		c.now = deadNS
	}
	return nil
}

// RunFor is RunUntil(Now()+d).
func (c *Clock) RunFor(d time.Duration) error {
	return c.RunUntil(c.Now().Add(d))
}

// Sleep advances virtual time by d, firing any events that fall inside the
// interval. It is the simulation analogue of time.Sleep for code that is
// driving the clock from outside an event callback.
func (c *Clock) Sleep(d time.Duration) error { return c.RunFor(d) }

// HourOfDay returns the current virtual hour in [0,24), used by
// load-dependent middlebox models (GFC state flushing, Figure 4).
func (c *Clock) HourOfDay() float64 {
	h := time.Duration(c.now).Hours()
	h = h - float64(int(h/24))*24
	if h < 0 {
		h += 24
	}
	return h
}
