// Package vclock implements a deterministic discrete-event virtual clock.
//
// All simulated components in this repository schedule work against a
// *Clock instead of the wall clock. This keeps every experiment — including
// the paper's two-day Figure 4 sweep and the 240-second classification-flush
// probes — deterministic and able to run in milliseconds of real time.
//
// The clock is single-threaded by design: Run drains the event queue in
// timestamp order, and ties are broken by insertion order so that repeated
// runs of the same experiment produce byte-identical results.
package vclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at   time.Time
	seq  uint64 // insertion order, breaks timestamp ties deterministically
	fn   func()
	dead bool
	idx  int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	e *event
}

// Stop cancels the timer. Stopping an already-fired or already-stopped
// timer is a no-op. It reports whether the call prevented the event from
// firing.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.dead {
		return false
	}
	t.e.dead = true
	t.e.fn = nil
	return true
}

// Clock is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with New.
type Clock struct {
	now   time.Time
	queue eventQueue
	seq   uint64
	// Budget guards against runaway simulations: Run stops with an error
	// after this many events when > 0.
	Budget int
	fired  int
}

// Epoch is the instant at which every new Clock starts. Using a fixed,
// recognizable epoch (midnight UTC) makes time-of-day experiments such as
// the Figure 4 sweep easy to express.
var Epoch = time.Date(2017, time.November, 1, 0, 0, 0, 0, time.UTC)

// New returns a clock positioned at Epoch with an empty event queue.
func New() *Clock {
	return &Clock{now: Epoch}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.now.Sub(t) }

// Schedule runs fn after d of virtual time has elapsed. A negative d is
// treated as zero. The returned Timer may be used to cancel the event.
func (c *Clock) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.ScheduleAt(c.now.Add(d), fn)
}

// ScheduleAt runs fn at the absolute virtual instant at. Instants in the
// past are clamped to the present.
func (c *Clock) ScheduleAt(at time.Time, fn func()) *Timer {
	if at.Before(c.now) {
		at = c.now
	}
	c.seq++
	e := &event{at: at, seq: c.seq, fn: fn}
	heap.Push(&c.queue, e)
	return &Timer{e: e}
}

// Pending reports the number of live events in the queue.
func (c *Clock) Pending() int {
	n := 0
	for _, e := range c.queue {
		if !e.dead {
			n++
		}
	}
	return n
}

// step fires the earliest event. It reports false when the queue is empty.
func (c *Clock) step() (bool, error) {
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*event)
		if e.dead {
			continue
		}
		if e.at.Before(c.now) {
			return false, fmt.Errorf("vclock: event scheduled at %v before now %v", e.at, c.now)
		}
		c.now = e.at
		c.fired++
		if c.Budget > 0 && c.fired > c.Budget {
			return false, fmt.Errorf("vclock: event budget %d exhausted at %v", c.Budget, c.now)
		}
		fn := e.fn
		e.fn = nil
		e.dead = true
		fn()
		return true, nil
	}
	return false, nil
}

// Run drains the event queue until it is empty, advancing virtual time as
// it goes. Events scheduled by running events are processed too.
func (c *Clock) Run() error {
	for {
		ok, err := c.step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// RunUntil drains events whose timestamp is at or before deadline, then
// advances the clock to deadline. Events beyond the deadline stay queued.
func (c *Clock) RunUntil(deadline time.Time) error {
	for {
		if len(c.queue) == 0 {
			break
		}
		// Peek at the earliest live event.
		var next *event
		for len(c.queue) > 0 {
			if c.queue[0].dead {
				heap.Pop(&c.queue)
				continue
			}
			next = c.queue[0]
			break
		}
		if next == nil || next.at.After(deadline) {
			break
		}
		if _, err := c.step(); err != nil {
			return err
		}
	}
	if c.now.Before(deadline) {
		c.now = deadline
	}
	return nil
}

// RunFor is RunUntil(Now()+d).
func (c *Clock) RunFor(d time.Duration) error {
	return c.RunUntil(c.now.Add(d))
}

// Sleep advances virtual time by d, firing any events that fall inside the
// interval. It is the simulation analogue of time.Sleep for code that is
// driving the clock from outside an event callback.
func (c *Clock) Sleep(d time.Duration) error { return c.RunFor(d) }

// HourOfDay returns the current virtual hour in [0,24), used by
// load-dependent middlebox models (GFC state flushing, Figure 4).
func (c *Clock) HourOfDay() float64 {
	h := c.now.Sub(Epoch).Hours()
	h = h - float64(int(h/24))*24
	if h < 0 {
		h += 24
	}
	return h
}
