// Package vclock implements a deterministic discrete-event virtual clock.
//
// All simulated components in this repository schedule work against a
// *Clock instead of the wall clock. This keeps every experiment — including
// the paper's two-day Figure 4 sweep and the 240-second classification-flush
// probes — deterministic and able to run in milliseconds of real time.
//
// The clock is single-threaded by design: Run drains the event queue in
// timestamp order, and ties are broken by insertion order so that repeated
// runs of the same experiment produce byte-identical results.
//
// Internally time is an int64 nanosecond offset from Epoch and the queue is
// a hierarchical timing wheel (a ladder/calendar queue) over pointer-free
// event records: events live in a flat slab addressed by uint32 handles,
// wheel buckets are intrusive uint32 lists, and callbacks are referenced by
// registry index rather than stored function values — so scheduling and
// firing an event in steady state writes no pointers (the GC write barrier
// never runs on the hot path) and allocates nothing. The wheel changes only
// the cost model, never the order: events fire in exact (at, seq) order,
// identical to a min-heap (DESIGN.md §14 states the invariants).
package vclock

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"time"

	"repro/internal/obs"
)

// Wheel geometry. A tick is 2^tickBits ns ≈ 1.05 ms — the same scale as
// netem's default LinkDelay, so one tick usually holds one delivery
// instant. Four levels of 64 buckets cover a horizon of 64^4 ticks
// (≈ 4.9 hours); events beyond the horizon wait in an overflow list (the
// Figure 4 two-day sweep parks its hour marks there).
const (
	tickBits  = 20
	levelBits = 6
	slots     = 1 << levelBits // 64
	levels    = 4

	// noHandle terminates intrusive bucket lists and marks empty buckets.
	noHandle = ^uint32(0)
)

// horizonTicks is the largest cursor-relative tick delta the wheel can
// place; anything farther goes to the overflow list.
const horizonTicks = int64(1) << (levelBits * levels)

// Event callback kinds. The registry a record's fn index points into is
// selected by kind, so the slab itself stays pointer-free.
const (
	kindClosure uint8 = iota // fn indexes Clock.closures
	kindPair                 // fn indexes Clock.pairs
	kindIdx                  // fn indexes Clock.regFns; arg is passed through
)

// Event locations. Wheel buckets and the overflow list hold live events
// only — Stop unlinks immediately — which is what lets the staging search
// advance the cursor knowing every candidate it chases is real. Staged
// events (near buffer or due ring) are cancelled by marking: the pop
// pipeline skips dead entries, and a parked cursor is never advanced by
// them.
const (
	locStaged   uint8 = iota // in the near buffer or due ring
	locWheel                 // in bucket[lvl][idx]
	locOverflow              // in the overflow list
)

// eventRec is one scheduled event in the flat slab. It contains no
// pointers: scheduling writes at/seq/fn/arg integers and links the record
// into a bucket by handle, so the GC write barrier never fires.
type eventRec struct {
	at   int64  // nanoseconds since Epoch
	seq  uint64 // insertion order, breaks timestamp ties deterministically
	next uint32 // intrusive bucket list link (noHandle = end)
	gen  uint32 // bumped on recycle so stale Timers cannot cancel the new tenant
	fn   uint32 // registry slot, interpreted per kind
	arg  uint32 // kindIdx argument
	kind uint8
	dead bool
	loc  uint8 // locStaged / locWheel / locOverflow
	lvl  uint8 // wheel level, valid when loc == locWheel
	idx  uint8 // wheel bucket index, valid when loc == locWheel
}

// nearEnt is one staged event of the tick currently being drained, sorted
// by (at, seq). Pointer-free like the slab.
type nearEnt struct {
	at  int64
	seq uint64
	h   uint32
}

// argPair backs ScheduleArg: a long-lived function value plus its argument,
// parked in a registry slot so the event record itself stays pointer-free.
type argPair struct {
	fn  func(any)
	arg any
}

// wheel is the bucket hierarchy. occ bitmaps mirror bucket occupancy so
// searches and cursor advances touch only occupied buckets — advancing the
// cursor across an hour of empty time is a handful of bitmap operations.
type wheel struct {
	cursor int64 // current tick; never exceeds the tick of any unstaged event
	count  int   // events resident in buckets (excludes overflow)
	occ    [levels]uint64
	bucket [levels][slots]uint32
	// overflow holds handles beyond the horizon; ofMin caches their
	// minimum tick so the next-event search can compare without scanning.
	overflow []uint32
	ofMin    int64
}

// FnID names a callback registered with RegisterFn.
type FnID uint32

// Timer is a handle to a scheduled event that can be cancelled. The handle
// remembers the event's generation so a Stop after the event has fired and
// its record has been recycled is a safe no-op.
type Timer struct {
	c   *Clock
	h   uint32
	gen uint32
}

// Stop cancels the timer. Stopping an already-fired or already-stopped
// timer is a no-op. It reports whether the call prevented the event from
// firing.
func (t *Timer) Stop() bool {
	if t == nil || t.c == nil {
		return false
	}
	c := t.c
	r := &c.slab[t.h]
	if r.gen != t.gen || r.dead {
		return false
	}
	c.live--
	c.freeSlot(r.kind, r.fn)
	switch r.loc {
	case locWheel:
		c.unlink(t.h)
		c.recycleHandle(t.h)
	case locOverflow:
		c.overflowRemove(t.h)
		c.recycleHandle(t.h)
	default:
		// Staged: mark dead; the pop pipeline skips and recycles it.
		r.dead = true
	}
	return true
}

// Clock is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with New.
type Clock struct {
	now int64 // nanoseconds since Epoch
	seq uint64
	// Budget guards against runaway simulations: Run stops with an error
	// after this many events when > 0.
	Budget int
	fired  int
	live   int // scheduled, unfired, uncancelled events — Pending() is O(1)

	slab  []eventRec
	freeh []uint32 // recycled slab handles

	// due is the FIFO of events at the instant currently firing (all at
	// dueAt). Same-instant schedules made from inside a callback append
	// here directly — the direct-dispatch fast path: no wheel, no sort,
	// provably the same order the heap would have produced because seq is
	// globally monotonic (DESIGN.md §14).
	due     []uint32
	dueHead int
	dueAt   int64

	// near holds the rest of the staged tick's events, sorted by
	// (at, seq); curTick is that tick, -1 when nothing is staged.
	near     []nearEnt
	nearHead int
	curTick  int64

	// depth counts nested callback dispatches; >0 means a callback is on
	// the stack, which is what arms the due-ring and Immediate fast paths.
	depth int

	wh wheel

	// Callback registries. regFns holds long-lived functions installed
	// once per clock (RegisterFn); closures/pairs are per-event slots
	// recycled through free lists.
	regFns   []func(uint32)
	closures []func()
	closFree []uint32
	pairs    []argPair
	pairFree []uint32

	// rec receives scheduler counters when tracing is armed; traced
	// caches rec.Enabled() so the disabled path costs one bool test.
	rec    obs.Recorder
	traced bool
}

// Epoch is the instant at which every new Clock starts. Using a fixed,
// recognizable epoch (midnight UTC) makes time-of-day experiments such as
// the Figure 4 sweep easy to express.
var Epoch = time.Date(2017, time.November, 1, 0, 0, 0, 0, time.UTC)

// New returns a clock positioned at Epoch with an empty event queue.
func New() *Clock {
	c := &Clock{curTick: -1}
	for l := 0; l < levels; l++ {
		for i := range c.wh.bucket[l] {
			c.wh.bucket[l][i] = noHandle
		}
	}
	c.wh.ofMin = math.MaxInt64
	return c
}

// SetRecorder installs the observability recorder the clock's scheduler
// counters (vclock_fired / vclock_fastpath / vclock_cascades) feed. Nil or
// obs.Nop disables them.
func (c *Clock) SetRecorder(r obs.Recorder) {
	if r == nil {
		r = obs.Nop
	}
	c.rec = r
	c.traced = r.Enabled()
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return Epoch.Add(time.Duration(c.now)) }

// NowNS returns the current virtual time as integer nanoseconds since
// Epoch — the timestamp form observability events carry.
func (c *Clock) NowNS() int64 { return c.now }

// Seq returns the insertion-order counter, which advances on every
// schedule call. Batching callers (netem's delivery runs) use it as a
// fence: a batch may only be extended while Seq is unchanged since the
// batch was scheduled, which proves no other event slotted in between the
// batched records' would-have-been queue positions.
func (c *Clock) Seq() uint64 { return c.seq }

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// RegisterFn installs a long-lived callback and returns its FnID for use
// with ScheduleIdx. Registration is per clock (forks register their own)
// and permanent; it is meant for a handful of subsystem dispatchers (e.g.
// netem's batch delivery), not per-event use.
func (c *Clock) RegisterFn(fn func(uint32)) FnID {
	c.regFns = append(c.regFns, fn)
	return FnID(len(c.regFns) - 1)
}

// ScheduleIdx runs the registered callback fn(arg) after d of virtual
// time. This is the pointer-free hot-path form: the event record stores
// two integers, so scheduling writes no pointers at all.
func (c *Clock) ScheduleIdx(d time.Duration, fn FnID, arg uint32) Timer {
	if d < 0 {
		d = 0
	}
	return c.scheduleNS(c.now+int64(d), kindIdx, uint32(fn), arg)
}

// Schedule runs fn after d of virtual time has elapsed. A negative d is
// treated as zero. The returned Timer may be used to cancel the event; it
// is returned by value so callers that discard it cost no allocation.
func (c *Clock) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return c.scheduleNS(c.now+int64(d), kindClosure, c.newClosure(fn), 0)
}

// ScheduleArg runs fn(arg) after d of virtual time has elapsed. It behaves
// like Schedule but keeps the callback and its state separate, so a caller
// on the per-packet hot path can pass a long-lived function value and a
// recycled argument record instead of allocating a closure per event.
func (c *Clock) ScheduleArg(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return c.scheduleNS(c.now+int64(d), kindPair, c.newPair(fn, arg), 0)
}

// ScheduleAt runs fn at the absolute virtual instant at. Instants in the
// past are clamped to the present.
func (c *Clock) ScheduleAt(at time.Time, fn func()) Timer {
	return c.scheduleNS(int64(at.Sub(Epoch)), kindClosure, c.newClosure(fn), 0)
}

func (c *Clock) newClosure(fn func()) uint32 {
	if n := len(c.closFree); n > 0 {
		s := c.closFree[n-1]
		c.closFree = c.closFree[:n-1]
		c.closures[s] = fn
		return s
	}
	c.closures = append(c.closures, fn)
	return uint32(len(c.closures) - 1)
}

func (c *Clock) newPair(fn func(any), arg any) uint32 {
	if n := len(c.pairFree); n > 0 {
		s := c.pairFree[n-1]
		c.pairFree = c.pairFree[:n-1]
		c.pairs[s] = argPair{fn: fn, arg: arg}
		return s
	}
	c.pairs = append(c.pairs, argPair{fn: fn, arg: arg})
	return uint32(len(c.pairs) - 1)
}

// freeSlot releases a closure or pair registry slot (kindIdx callbacks are
// permanent and own no per-event slot).
func (c *Clock) freeSlot(kind uint8, slot uint32) {
	switch kind {
	case kindClosure:
		c.closures[slot] = nil
		c.closFree = append(c.closFree, slot)
	case kindPair:
		c.pairs[slot] = argPair{}
		c.pairFree = append(c.pairFree, slot)
	}
}

// newHandle returns a fresh or recycled slab handle with dead cleared and
// next unlinked. Generations persist across recycling (bumped at recycle)
// so Timers from previous tenants cannot cancel the new one.
func (c *Clock) newHandle() uint32 {
	if n := len(c.freeh); n > 0 {
		h := c.freeh[n-1]
		c.freeh = c.freeh[:n-1]
		r := &c.slab[h]
		r.dead = false
		r.next = noHandle
		return h
	}
	c.slab = append(c.slab, eventRec{next: noHandle})
	return uint32(len(c.slab) - 1)
}

// recycleHandle retires a reaped (fired or cancelled-and-collected) record.
// Registry slots are freed separately: Stop frees on cancel, dispatch frees
// after extracting the callback.
func (c *Clock) recycleHandle(h uint32) {
	r := &c.slab[h]
	r.gen++
	r.dead = true
	c.freeh = append(c.freeh, h)
}

// scheduleNS creates the event record and routes it: same-instant events
// scheduled from inside a callback join the due ring (the direct-dispatch
// fast path); events landing in the staged tick merge into the sorted near
// buffer; everything else goes to the wheel (or overflow past the horizon).
func (c *Clock) scheduleNS(at int64, kind uint8, fnSlot, arg uint32) Timer {
	if at < c.now {
		at = c.now
	}
	c.seq++
	h := c.newHandle()
	r := &c.slab[h]
	r.at, r.seq, r.fn, r.arg, r.kind = at, c.seq, fnSlot, arg, kind
	gen := r.gen
	c.live++

	switch {
	case c.dueHead < len(c.due) && at == c.dueAt:
		// The instant at the head of the pop pipeline: appending preserves
		// (at, seq) order because this event's seq is the largest yet.
		r.loc = locStaged
		c.due = append(c.due, h)
		if c.traced {
			c.rec.Add(obs.CtrVClockFastPath, 1)
		}
	case c.depth > 0 && at == c.now:
		// Same-instant schedule from inside a callback with the due ring
		// drained: revive it at the current instant. Every event pending at
		// now is (by construction) in the due ring, so FIFO order here is
		// exactly heap order.
		r.loc = locStaged
		c.due = c.due[:0]
		c.dueHead = 0
		c.dueAt = c.now
		c.due = append(c.due, h)
		if c.traced {
			c.rec.Add(obs.CtrVClockFastPath, 1)
		}
	case at>>tickBits == c.curTick:
		// The staged tick: binary-insert into the sorted near buffer. The
		// new event carries the largest seq, so it lands after any entry
		// sharing its instant.
		if c.dueHead < len(c.due) && at < c.dueAt {
			// Only reachable when a RunUntil deadline parked the pipeline
			// mid-tick with a promoted run still undrained: the new event
			// precedes that run, so demote the run back into near where
			// the sort covers both.
			c.demoteDue()
		}
		lo, hi := c.nearHead, len(c.near)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if c.near[mid].at <= at {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		r.loc = locStaged
		c.near = append(c.near, nearEnt{})
		copy(c.near[lo+1:], c.near[lo:])
		c.near[lo] = nearEnt{at: at, seq: c.seq, h: h}
	default:
		c.place(h, at>>tickBits)
	}
	return Timer{c: c, h: h, gen: gen}
}

// demoteDue returns the undrained due run to the front of the near buffer.
// Due entries all share dueAt — an instant strictly below every remaining
// near entry — and sit in seq order, so prepending them keeps near sorted.
func (c *Clock) demoteDue() {
	live := 0
	for _, dh := range c.due[c.dueHead:] {
		if !c.slab[dh].dead {
			live++
		}
	}
	tail := len(c.near) - c.nearHead
	copy(c.near, c.near[c.nearHead:])
	c.near = c.near[:tail]
	c.nearHead = 0
	for i := 0; i < live; i++ {
		c.near = append(c.near, nearEnt{})
	}
	copy(c.near[live:], c.near[:tail])
	w := 0
	for _, dh := range c.due[c.dueHead:] {
		if c.slab[dh].dead {
			c.recycleHandle(dh)
			continue
		}
		c.near[w] = nearEnt{at: c.dueAt, seq: c.slab[dh].seq, h: dh}
		w++
	}
	c.due = c.due[:0]
	c.dueHead = 0
}

// place links handle h (whose event is at tick t ≥ cursor) into the wheel
// level selected by its cursor-relative delta, or the overflow list beyond
// the horizon.
func (c *Clock) place(h uint32, t int64) {
	w := &c.wh
	delta := t - w.cursor
	var l int
	switch {
	case delta < slots:
		l = 0
	case delta < 1<<(2*levelBits):
		l = 1
	case delta < 1<<(3*levelBits):
		l = 2
	case delta < horizonTicks:
		l = 3
	default:
		c.slab[h].loc = locOverflow
		w.overflow = append(w.overflow, h)
		if t < w.ofMin {
			w.ofMin = t
		}
		return
	}
	idx := (t >> (levelBits * l)) & (slots - 1)
	r := &c.slab[h]
	r.next = w.bucket[l][idx]
	r.loc, r.lvl, r.idx = locWheel, uint8(l), uint8(idx)
	w.bucket[l][idx] = h
	w.occ[l] |= 1 << idx
	w.count++
}

// unlink removes a live event from its wheel bucket (Timer.Stop). Bucket
// chains are short — a handful of events sharing a span — so the list walk
// is cheap, and eager removal is what keeps the staging search honest:
// every occupied bucket it can chase holds at least one live event.
func (c *Clock) unlink(h uint32) {
	r := &c.slab[h]
	w := &c.wh
	l, idx := int(r.lvl), int(r.idx)
	if w.bucket[l][idx] == h {
		w.bucket[l][idx] = r.next
	} else {
		for cur := w.bucket[l][idx]; cur != noHandle; {
			n := &c.slab[cur]
			if n.next == h {
				n.next = r.next
				break
			}
			cur = n.next
		}
	}
	if w.bucket[l][idx] == noHandle {
		w.occ[l] &^= 1 << idx
	}
	w.count--
}

// overflowRemove removes a live event from the overflow list, restoring
// the cached minimum when the removed event defined it.
func (c *Clock) overflowRemove(h uint32) {
	w := &c.wh
	for i, oh := range w.overflow {
		if oh == h {
			w.overflow[i] = w.overflow[len(w.overflow)-1]
			w.overflow = w.overflow[:len(w.overflow)-1]
			break
		}
	}
	if c.slab[h].at>>tickBits == w.ofMin {
		w.ofMin = math.MaxInt64
		for _, oh := range w.overflow {
			if t := c.slab[oh].at >> tickBits; t < w.ofMin {
				w.ofMin = t
			}
		}
	}
}

// earliest returns the lowest tick that might hold the next event: the
// exact tick for level 0, the span start for higher levels (a lower bound
// the caller refines by cascading), or the cached overflow minimum.
// fromOverflow reports that the overflow list supplied the bound.
func (w *wheel) earliest() (t int64, fromOverflow, ok bool) {
	best := int64(math.MaxInt64)
	if w.occ[0] != 0 {
		q := bits.TrailingZeros64(bits.RotateLeft64(w.occ[0], -int(w.cursor&(slots-1))))
		best = w.cursor + int64(q)
	}
	for l := 1; l < levels; l++ {
		if w.occ[l] == 0 {
			continue
		}
		cq := w.cursor >> (levelBits * l)
		rot := bits.RotateLeft64(w.occ[l], -int(cq&(slots-1)))
		q := int64(bits.TrailingZeros64(rot))
		if q == 0 {
			// The cursor's own bucket at this level was cascaded when the
			// cursor entered its span; anything in it now is a full wrap
			// away. A different bucket later in the current wrap is still
			// nearer than that, so the wrap candidate only stands when the
			// cursor's bucket is the sole occupied one.
			q = slots
			if rest := rot &^ 1; rest != 0 {
				if q2 := int64(bits.TrailingZeros64(rest)); q2 < q {
					q = q2
				}
			}
		}
		if cand := (cq + q) << (levelBits * l); cand < best {
			best = cand
		}
	}
	// On a tie the overflow must win: an overflow event can share a tick
	// with a bucketed one, and staging the bucket without draining the
	// overflow first would fire the tick's bucketed events ahead of an
	// earlier-(at,seq) overflow resident.
	if len(w.overflow) > 0 && w.ofMin <= best {
		return w.ofMin, true, true
	}
	if best == math.MaxInt64 {
		return 0, false, false
	}
	return best, false, true
}

// advanceTo moves the cursor to tick t, cascading every occupied
// higher-level bucket whose span the cursor enters. The caller guarantees
// no unstaged event lives at a tick below t, which is what makes the
// redistribution exact: every relocated event lands at a delta below its
// old level's span.
func (c *Clock) advanceTo(t int64) {
	w := &c.wh
	old := w.cursor
	if t <= old {
		return
	}
	w.cursor = t
	for l := 1; l < levels; l++ {
		shift := levelBits * l
		oldQ, newQ := old>>shift, t>>shift
		if oldQ == newQ {
			break // no boundary crossed here, so none above either
		}
		mask := ^uint64(0)
		if newQ-oldQ < slots {
			// Only the indices in (oldQ, newQ] entered their span.
			lo, hi := (oldQ+1)&(slots-1), newQ&(slots-1)
			if lo <= hi {
				mask = (^uint64(0) << lo) & (^uint64(0) >> (slots - 1 - hi))
			} else {
				mask = (^uint64(0) << lo) | (^uint64(0) >> (slots - 1 - hi))
			}
		}
		crossed := w.occ[l] & mask
		for crossed != 0 {
			idx := bits.TrailingZeros64(crossed)
			crossed &^= 1 << idx
			h := w.bucket[l][idx]
			w.bucket[l][idx] = noHandle
			w.occ[l] &^= 1 << idx
			moved := int64(0)
			for h != noHandle {
				r := &c.slab[h]
				nexth := r.next
				w.count--
				c.place(h, r.at>>tickBits)
				moved++
				h = nexth
			}
			if c.traced {
				c.rec.Add(obs.CtrVClockCascades, moved)
			}
		}
	}
}

// drainOverflow migrates every overflow event now inside the horizon into
// the wheel and recomputes the cached minimum of the remainder.
func (c *Clock) drainOverflow() {
	w := &c.wh
	keep := w.overflow[:0]
	newMin := int64(math.MaxInt64)
	for _, h := range w.overflow {
		t := c.slab[h].at >> tickBits
		if t-w.cursor < horizonTicks {
			c.place(h, t)
			continue
		}
		keep = append(keep, h)
		if t < newMin {
			newMin = t
		}
	}
	w.overflow = keep
	w.ofMin = newMin
}

// stage advances the cursor to the next occupied tick at or below
// limitTick, pulls that tick's live events into the sorted near buffer,
// and records it as curTick. It reports false when no event lives at or
// below the limit (the cursor then stays put, so later schedules into the
// gap remain placeable).
func (c *Clock) stage(limitTick int64) bool {
	w := &c.wh
	for {
		t, fromOverflow, ok := w.earliest()
		if !ok || t > limitTick {
			return false
		}
		c.advanceTo(t)
		if fromOverflow {
			c.drainOverflow()
			continue
		}
		idx := t & (slots - 1)
		if w.occ[0]&(1<<idx) == 0 {
			continue // span-start bound only; re-search after the cascade
		}
		h := w.bucket[0][idx]
		w.bucket[0][idx] = noHandle
		w.occ[0] &^= 1 << idx
		c.near = c.near[:0]
		c.nearHead = 0
		for h != noHandle {
			r := &c.slab[h]
			nexth := r.next
			w.count--
			r.loc = locStaged
			c.near = append(c.near, nearEnt{at: r.at, seq: r.seq, h: h})
			h = nexth
		}
		slices.SortFunc(c.near, func(a, b nearEnt) int {
			if a.at != b.at {
				if a.at < b.at {
					return -1
				}
				return 1
			}
			if a.seq < b.seq {
				return -1
			}
			return 1
		})
		c.curTick = t
		return true
	}
}

// next pops the earliest live event with at ≤ limit, walking the pop
// pipeline: due ring → near buffer → wheel. It reports false when nothing
// fires at or before the limit; staged-but-beyond-limit events stay staged.
func (c *Clock) next(limit int64) (h uint32, at int64, ok bool) {
	for {
		for c.dueHead < len(c.due) {
			h = c.due[c.dueHead]
			if c.slab[h].dead {
				c.recycleHandle(h)
				c.dueHead++
				continue
			}
			if c.dueAt > limit {
				return 0, 0, false
			}
			c.dueHead++
			return h, c.dueAt, true
		}
		if len(c.due) > 0 {
			c.due = c.due[:0]
			c.dueHead = 0
		}
		for c.nearHead < len(c.near) {
			en := c.near[c.nearHead]
			if c.slab[en.h].dead {
				c.recycleHandle(en.h)
				c.nearHead++
				continue
			}
			if en.at > limit {
				return 0, 0, false
			}
			// Promote the run of events sharing this instant to the due
			// ring, where same-instant schedules can join it FIFO.
			c.dueAt = en.at
			j := c.nearHead
			for j < len(c.near) && c.near[j].at == en.at {
				if c.slab[c.near[j].h].dead {
					c.recycleHandle(c.near[j].h)
				} else {
					c.due = append(c.due, c.near[j].h)
				}
				j++
			}
			c.nearHead = j
			break
		}
		if c.dueHead < len(c.due) {
			continue
		}
		c.near = c.near[:0]
		c.nearHead = 0
		c.curTick = -1
		if c.wh.count == 0 && len(c.wh.overflow) == 0 {
			return 0, 0, false
		}
		if !c.stage(limit >> tickBits) {
			return 0, 0, false
		}
	}
}

// Fork returns a new clock positioned at the same virtual instant, with
// the same insertion-order counter, event budget, and fired count — and an
// empty event queue. Pending events stay with the parent: forking is only
// meaningful at quiescence (between replays), when nothing is scheduled;
// a fork taken mid-replay would silently drop the in-flight events, so
// callers that cannot guarantee quiescence must drain the queue first.
//
// Copying seq keeps the fork's timestamp tie-breaking behaviour aligned
// with a hypothetical serial continuation of the parent, which is part of
// why forked evaluation reproduces serial results byte-for-byte.
//
// Callback registries are NOT carried over: subsystems holding FnIDs
// register afresh against the fork.
func (c *Clock) Fork() *Clock {
	nc := New()
	nc.now, nc.seq, nc.Budget, nc.fired = c.now, c.seq, c.Budget, c.fired
	nc.wh.cursor = c.now >> tickBits
	return nc
}

// Pending reports the number of live events in the queue. The count is
// maintained on schedule/Stop/fire, so this is O(1) — replay quiescence
// polling leans on it.
func (c *Clock) Pending() int { return c.live }

// Immediate reports whether an event scheduled at the current instant
// would be the very next thing to fire: a callback is on the stack and no
// other event is pending at now. Under this predicate a call site may run
// same-instant work inline instead of scheduling it — the resulting order
// is identical because the scheduled event would have fired immediately
// after the current callback returned, with nothing in between (the
// fast-path fence rules in DESIGN.md §14).
//
// Every event pending at the current instant lives in the due ring while a
// callback is dispatching — later events of a staged tick sit in near at
// strictly later instants, and unstaged wheel events are at later ticks —
// so the check is two integer comparisons.
func (c *Clock) Immediate() bool {
	return c.depth > 0 && c.dueHead >= len(c.due)
}

// step fires the earliest event with at ≤ limit. It reports false when no
// such event exists.
func (c *Clock) step(limit int64) (bool, error) {
	h, at, ok := c.next(limit)
	if !ok {
		return false, nil
	}
	if at < c.now {
		return false, fmt.Errorf("vclock: event scheduled at %v before now %v", Epoch.Add(time.Duration(at)), c.Now())
	}
	c.now = at
	c.fired++
	if c.Budget > 0 && c.fired > c.Budget {
		return false, fmt.Errorf("vclock: event budget %d exhausted at %v", c.Budget, c.Now())
	}
	if c.traced {
		c.rec.Add(obs.CtrVClockFired, 1)
	}
	r := &c.slab[h]
	kind, fnSlot, arg := r.kind, r.fn, r.arg
	c.live--
	c.recycleHandle(h)
	c.depth++
	switch kind {
	case kindIdx:
		c.regFns[fnSlot](arg)
	case kindPair:
		p := c.pairs[fnSlot]
		c.pairs[fnSlot] = argPair{}
		c.pairFree = append(c.pairFree, fnSlot)
		p.fn(p.arg)
	default:
		fn := c.closures[fnSlot]
		c.closures[fnSlot] = nil
		c.closFree = append(c.closFree, fnSlot)
		fn()
	}
	c.depth--
	return true, nil
}

// Step fires the single earliest pending event, advancing virtual time to
// it. It reports false when the queue is empty. Run is Step in a loop;
// the scheduler benchmarks and differential tests drive Step directly.
func (c *Clock) Step() (bool, error) { return c.step(math.MaxInt64) }

// Run drains the event queue until it is empty, advancing virtual time as
// it goes. Events scheduled by running events are processed too.
func (c *Clock) Run() error {
	for {
		ok, err := c.step(math.MaxInt64)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// RunUntil drains events whose timestamp is at or before deadline, then
// advances the clock to deadline. Events beyond the deadline stay queued.
func (c *Clock) RunUntil(deadline time.Time) error {
	deadNS := int64(deadline.Sub(Epoch))
	for {
		ok, err := c.step(deadNS)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	if c.now < deadNS {
		c.now = deadNS
	}
	return nil
}

// RunFor is RunUntil(Now()+d).
func (c *Clock) RunFor(d time.Duration) error {
	return c.RunUntil(c.Now().Add(d))
}

// Sleep advances virtual time by d, firing any events that fall inside the
// interval. It is the simulation analogue of time.Sleep for code that is
// driving the clock from outside an event callback.
func (c *Clock) Sleep(d time.Duration) error { return c.RunFor(d) }

// HourOfDay returns the current virtual hour in [0,24), used by
// load-dependent middlebox models (GFC state flushing, Figure 4).
func (c *Clock) HourOfDay() float64 {
	h := time.Duration(c.now).Hours()
	h = h - float64(int(h/24))*24
	if h < 0 {
		h += 24
	}
	return h
}
