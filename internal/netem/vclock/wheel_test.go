package vclock

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// The differential harness drives the timing wheel and a brute-force
// reference scheduler with the same randomized script — schedules across
// every delay class (zero, same-tick bursts, in-wheel, cross-level,
// past-the-horizon, negative/past-deadline clamps), cancellations, nested
// scheduling from inside callbacks, partial drains, and forks — and
// requires byte-identical logs: same fire order, same timestamps, same
// Pending counts, same Fork seq parity. The reference is deliberately the
// dumbest possible implementation (linear scan for the (at, seq) minimum),
// so any divergence indicts the wheel's routing, cascade, or staging
// logic, never the oracle.

// sched abstracts the two implementations behind one driving surface.
type sched interface {
	schedule(delayNS int64, kindSel int, fn func()) (stop func() bool)
	scheduleAt(atNS int64, fn func())
	step() (bool, error)
	run() error
	runUntil(atNS int64) error
	nowNS() int64
	seq() uint64
	pending() int
	fork() sched
}

// wheelSched adapts *Clock. kindSel picks the public scheduling API so the
// closure, pair, and registered-index paths all get differential coverage.
type wheelSched struct {
	c     *Clock
	reg   FnID
	tramp []func() // trampoline slots for the ScheduleIdx path
	free  []uint32
}

func newWheelSched() *wheelSched {
	w := &wheelSched{c: New()}
	w.bind()
	return w
}

func (w *wheelSched) bind() {
	w.reg = w.c.RegisterFn(func(arg uint32) {
		fn := w.tramp[arg]
		w.tramp[arg] = nil
		w.free = append(w.free, arg)
		fn()
	})
}

func (w *wheelSched) schedule(delayNS int64, kindSel int, fn func()) func() bool {
	var t Timer
	switch kindSel % 3 {
	case 0:
		t = w.c.Schedule(time.Duration(delayNS), fn)
	case 1:
		t = w.c.ScheduleArg(time.Duration(delayNS), func(a any) { a.(func())() }, fn)
	default:
		var slot uint32
		if n := len(w.free); n > 0 {
			slot = w.free[n-1]
			w.free = w.free[:n-1]
			w.tramp[slot] = fn
		} else {
			w.tramp = append(w.tramp, fn)
			slot = uint32(len(w.tramp) - 1)
		}
		t = w.c.ScheduleIdx(time.Duration(delayNS), w.reg, slot)
	}
	return t.Stop
}

func (w *wheelSched) scheduleAt(atNS int64, fn func()) {
	w.c.ScheduleAt(Epoch.Add(time.Duration(atNS)), fn)
}

func (w *wheelSched) step() (bool, error)       { return w.c.Step() }
func (w *wheelSched) run() error                { return w.c.Run() }
func (w *wheelSched) runUntil(atNS int64) error { return w.c.RunUntil(Epoch.Add(time.Duration(atNS))) }
func (w *wheelSched) nowNS() int64              { return w.c.NowNS() }
func (w *wheelSched) seq() uint64               { return w.c.Seq() }
func (w *wheelSched) pending() int              { return w.c.Pending() }
func (w *wheelSched) fork() sched {
	nw := &wheelSched{c: w.c.Fork()}
	nw.bind()
	return nw
}

// refSched is the oracle: a flat slice scanned linearly for the minimum
// (at, seq) live event.
type refEvent struct {
	at   int64
	seq  uint64
	fn   func()
	dead bool
}

type refSched struct {
	now    int64
	seqCtr uint64
	evs    []*refEvent
}

func (r *refSched) schedule(delayNS int64, _ int, fn func()) func() bool {
	if delayNS < 0 {
		delayNS = 0
	}
	return r.at(r.now+delayNS, fn)
}

func (r *refSched) scheduleAt(atNS int64, fn func()) { r.at(atNS, fn) }

func (r *refSched) at(atNS int64, fn func()) func() bool {
	if atNS < r.now {
		atNS = r.now
	}
	r.seqCtr++
	e := &refEvent{at: atNS, seq: r.seqCtr, fn: fn}
	r.evs = append(r.evs, e)
	return func() bool {
		if e.dead || e.fn == nil {
			return false
		}
		e.dead = true
		return true
	}
}

func (r *refSched) step() (bool, error) { return r.stepLimit(int64(1)<<62 - 1) }

func (r *refSched) stepLimit(limit int64) (bool, error) {
	best := -1
	for i, e := range r.evs {
		if e.dead || e.fn == nil {
			continue
		}
		if best < 0 || e.at < r.evs[best].at || (e.at == r.evs[best].at && e.seq < r.evs[best].seq) {
			best = i
		}
	}
	if best < 0 || r.evs[best].at > limit {
		return false, nil
	}
	e := r.evs[best]
	r.now = e.at
	fn := e.fn
	e.fn = nil
	fn()
	return true, nil
}

func (r *refSched) run() error {
	for {
		ok, err := r.stepLimit(int64(1)<<62 - 1)
		if err != nil || !ok {
			return err
		}
	}
}

func (r *refSched) runUntil(atNS int64) error {
	for {
		ok, err := r.stepLimit(atNS)
		if err != nil || !ok {
			break
		}
	}
	if r.now < atNS {
		r.now = atNS
	}
	return nil
}

func (r *refSched) nowNS() int64 { return r.now }
func (r *refSched) seq() uint64  { return r.seqCtr }
func (r *refSched) pending() int {
	n := 0
	for _, e := range r.evs {
		if !e.dead && e.fn != nil {
			n++
		}
	}
	return n
}
func (r *refSched) fork() sched { return &refSched{now: r.now, seqCtr: r.seqCtr} }

// delayFor maps a class byte to a delay exercising a distinct wheel path.
func delayFor(class byte, rng *rand.Rand) int64 {
	tick := int64(1) << tickBits
	switch class % 8 {
	case 0:
		return 0 // same instant
	case 1:
		return rng.Int63n(tick) // same or adjacent tick
	case 2:
		return tick + rng.Int63n(tick*slots) // level 0/1
	case 3:
		return tick * slots * (1 + rng.Int63n(slots)) // level 1/2
	case 4:
		return tick * slots * slots * (1 + rng.Int63n(slots)) // level 2/3
	case 5:
		return tick * horizonTicks / 2 // deep level 3
	case 6:
		return tick*horizonTicks + rng.Int63n(tick*horizonTicks) // overflow
	default:
		return -rng.Int63n(1 << 30) // negative: clamps to now
	}
}

// runScript interprets data as an op program against s, returning the log.
func runScript(s sched, data []byte) string {
	var log strings.Builder
	rng := rand.New(rand.NewSource(12345)) // same stream for both drivers
	var stops []func() bool
	nextID := 0
	var mkFn func(depth int) func()
	mkFn = func(depth int) func() {
		id := nextID
		nextID++
		// Nested behavior is derived from the id, so both drivers' events
		// perform identical actions when (and only when) fired in the same
		// order at the same instants.
		return func() {
			fmt.Fprintf(&log, "fire %d @%d\n", id, s.nowNS())
			if depth < 2 {
				switch id % 5 {
				case 0: // same-instant burst from inside a callback
					n := 1 + id%3
					for i := 0; i < n; i++ {
						stops = append(stops, s.schedule(0, id+i, mkFn(depth+1)))
					}
				case 1: // short reschedule
					s.schedule(int64(1)<<tickBits/4, id, mkFn(depth+1))
				case 2: // cancel a random earlier timer from inside a callback
					if len(stops) > 0 {
						k := id % len(stops)
						fmt.Fprintf(&log, "nested-stop %d %v\n", k, stops[k]())
					}
				}
			}
		}
	}

	for i := 0; i+1 < len(data); i += 2 {
		op, p := data[i], data[i+1]
		switch op % 7 {
		case 0, 1: // schedule (weighted: most common op)
			d := delayFor(p, rng)
			stops = append(stops, s.schedule(d, int(p), mkFn(0)))
		case 2: // scheduleAt, sometimes in the past
			at := s.nowNS() + delayFor(p, rng) - int64(p)<<16
			s.scheduleAt(at, mkFn(0))
			nextIDCheck(&log, s)
		case 3: // cancel
			if len(stops) > 0 {
				k := int(p) % len(stops)
				fmt.Fprintf(&log, "stop %d %v\n", k, stops[k]())
			}
		case 4: // partial drain to an arbitrary deadline (may split a tick)
			d := s.nowNS() + delayFor(p, rng)/2 + int64(p)
			if err := s.runUntil(d); err != nil {
				fmt.Fprintf(&log, "rununtil err %v\n", err)
			}
			fmt.Fprintf(&log, "rununtil @%d pend %d\n", s.nowNS(), s.pending())
		case 5: // single steps
			for n := 0; n < int(p%4)+1; n++ {
				ok, err := s.step()
				fmt.Fprintf(&log, "step %v %v @%d\n", ok, err, s.nowNS())
			}
		case 6: // fork parity: seq/now carried, fresh queue replays identically
			f := s.fork()
			fmt.Fprintf(&log, "fork seq %d now %d pend %d\n", f.seq(), f.nowNS(), f.pending())
			f.schedule(delayFor(p, rng), int(p), func() {
				fmt.Fprintf(&log, "fork-fire-a @%d\n", f.nowNS())
			})
			f.schedule(0, int(p)+1, func() {
				fmt.Fprintf(&log, "fork-fire-b @%d\n", f.nowNS())
			})
			if err := f.run(); err != nil {
				fmt.Fprintf(&log, "fork err %v\n", err)
			}
			fmt.Fprintf(&log, "fork done seq %d @%d\n", f.seq(), f.nowNS())
		}
	}
	if err := s.run(); err != nil {
		fmt.Fprintf(&log, "run err %v\n", err)
	}
	fmt.Fprintf(&log, "end @%d pend %d seq %d\n", s.nowNS(), s.pending(), s.seq())
	return log.String()
}

func nextIDCheck(log *strings.Builder, s sched) {
	fmt.Fprintf(log, "pend %d seq %d\n", s.pending(), s.seq())
}

func diffScripts(t *testing.T, data []byte) {
	t.Helper()
	got := runScript(newWheelSched(), data)
	want := runScript(&refSched{}, data)
	if got != want {
		gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("divergence at log line %d:\n  wheel: %q\n  ref:   %q\n(script %x)", i, gl[i], wl[i], data)
			}
		}
		t.Fatalf("log length mismatch: wheel %d lines, ref %d lines (script %x)", len(gl), len(wl), data)
	}
}

// TestWheelMatchesReferenceRandom drives several hundred randomized
// scripts through both schedulers. Run with -race in CI.
func TestWheelMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0x11b3247e))
	for script := 0; script < 300; script++ {
		n := 8 + rng.Intn(120)
		data := make([]byte, n)
		rng.Read(data)
		diffScripts(t, data)
	}
}

// TestWheelSameTickBurst pins the due-ring fast path: a callback-scheduled
// same-instant burst must fire FIFO, interleaved correctly with events at
// later instants inside the same tick.
func TestWheelSameTickBurst(t *testing.T) {
	diffScripts(t, []byte{
		0, 0, 0, 0, 0, 0, // three same-instant roots
		0, 1, 0, 1, // same-tick followers
		5, 2, // a couple of single steps
		0, 0, 4, 1, // more roots, partial drain
	})
}

// TestWheelDeadlineSplitsTick pins the demotion path: a RunUntil deadline
// that parks the pipeline mid-tick, followed by schedules below the parked
// instant.
func TestWheelDeadlineSplitsTick(t *testing.T) {
	c := New()
	var order []string
	tick := int64(1) << tickBits
	base := Epoch.Add(time.Duration(10 * tick))
	// Two instants inside tick 10.
	c.ScheduleAt(base.Add(100), func() { order = append(order, "a") })
	c.ScheduleAt(base.Add(900), func() { order = append(order, "d") })
	c.ScheduleAt(base.Add(900), func() { order = append(order, "e") })
	// Stop between them: the 900ns run is promoted but undrained.
	if err := c.RunUntil(base.Add(500)); err != nil {
		t.Fatal(err)
	}
	// Schedule below the parked run — must fire before it.
	c.ScheduleAt(base.Add(600), func() { order = append(order, "b") })
	c.ScheduleAt(base.Add(700), func() { order = append(order, "c") })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abcde" {
		t.Fatalf("fire order = %q, want abcde", got)
	}
}

// FuzzWheelVsHeap lets the fuzzer hunt for schedule/cancel/run interleavings
// where the wheel and the reference disagree.
func FuzzWheelVsHeap(f *testing.F) {
	f.Add([]byte{0, 0, 0, 16, 0, 32, 4, 9, 0, 48, 3, 1, 5, 2})
	f.Add([]byte{0, 6, 0, 6, 4, 200, 0, 5, 6, 7, 0, 0, 5, 3})
	f.Add([]byte{2, 255, 0, 7, 3, 0, 0, 64, 4, 128, 0, 0, 0, 1, 5, 1, 6, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			t.Skip()
		}
		diffScripts(t, data)
	})
}
