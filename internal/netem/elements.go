package netem

import (
	"time"

	"repro/internal/netem/packet"
	"repro/internal/obs"
)

// linkDrop records a path element discarding a packet. Shared by every
// dropping element so drop evidence is uniform across the chain.
func linkDrop(ctx Context, actor, reason string, size int) {
	r := ctx.Rec()
	r.Record(obs.Event{VNS: ctx.VNS(), Kind: obs.KindLinkDrop, Actor: actor, Label: reason, Value: int64(size)})
	r.Add(obs.CtrLinkDrops, 1)
}

// Hop models one TTL-decrementing router. A packet whose TTL reaches zero
// at this hop is dropped and, when EmitICMP is set, answered with an ICMP
// time-exceeded toward its source address — the mechanism lib·erate's
// middlebox-localization probes rely on.
type Hop struct {
	Label string
	Addr  packet.Addr
	// DropDefects drops packets exhibiting any of these defects, the way
	// strict operational routers discard malformed datagrams.
	DropDefects packet.DefectSet
	// EmitICMP controls whether TTL expiry is reported to the sender.
	EmitICMP bool
}

// Name implements Element.
func (h *Hop) Name() string { return h.Label }

// Process implements Element.
func (h *Hop) Process(ctx Context, dir Direction, f *packet.Frame) {
	if f.Len() < 20 {
		return // unroutable garbage
	}
	if !h.DropDefects.Empty() {
		if _, defects := f.Parse(); defects.Intersects(h.DropDefects) {
			if ctx.Traced() {
				linkDrop(ctx, h.Label, "defect", f.Len())
			}
			return
		}
	}
	if f.TTL() <= 1 {
		if ctx.Traced() {
			r := ctx.Rec()
			r.Record(obs.Event{VNS: ctx.VNS(), Kind: obs.KindLinkExpire, Actor: h.Label, Value: int64(f.Len())})
			r.Add(obs.CtrTTLExpiries, 1)
		}
		if h.EmitICMP {
			// Expiry is the rare path; materializing here keeps the quoted
			// bytes accurate (TTL as it arrived at this hop).
			raw := f.Raw()
			var src packet.Addr
			copy(src[:], raw[12:16])
			icmp := packet.NewICMPTimeExceeded(h.Addr, src, raw)
			if dir == ToServer {
				ctx.SendToClient(packet.FrameOf(icmp))
			} else {
				ctx.SendToServer(packet.FrameOf(icmp))
			}
		}
		return
	}
	// The TTL decrement is lazy until something downstream reads the bytes,
	// and the RFC 1624 incremental update keeps a warm parse cache valid
	// across the hop — routers neither copy nor re-parse in the fast path.
	ctx.Forward(f.WithTTLDecremented())
}

// Filter drops packets matching a predicate or defect set, in one or both
// directions. Operational networks in the paper dropped most malformed
// packets somewhere between the classifier and the server; Filter is how
// the per-network profiles express that.
type Filter struct {
	Label       string
	DropDefects packet.DefectSet
	// Drop, when non-nil, additionally drops packets it returns true for.
	Drop func(p *packet.Packet, defects packet.DefectSet) bool
	// OnlyDir, when non-nil, restricts filtering to one direction.
	OnlyDir *Direction
}

// Name implements Element.
func (f *Filter) Name() string { return f.Label }

// Process implements Element.
func (f *Filter) Process(ctx Context, dir Direction, fr *packet.Frame) {
	if f.OnlyDir != nil && dir != *f.OnlyDir {
		ctx.Forward(fr)
		return
	}
	p, defects := fr.Parse()
	if defects.Intersects(f.DropDefects) {
		if ctx.Traced() {
			linkDrop(ctx, f.Label, "defect", fr.Len())
		}
		return
	}
	if f.Drop != nil && f.Drop(p, defects) {
		if ctx.Traced() {
			linkDrop(ctx, f.Label, "filter", fr.Len())
		}
		return
	}
	ctx.Forward(fr)
}

// Pipe models the bottleneck link: every byte takes wire time proportional
// to the configured rate, so end-to-end throughput measurements (the
// paper's throttling-detection signal) are meaningful.
type Pipe struct {
	Label string
	// RateBps is the link capacity in bits per second.
	RateBps float64

	nextFree [2]time.Time
}

// Name implements Element.
func (p *Pipe) Name() string { return p.Label }

// ForkElement implements Forkable: the copy continues from the same
// per-direction transmission-queue positions.
func (p *Pipe) ForkElement() Element {
	c := *p
	return &c
}

// Process implements Element.
func (p *Pipe) Process(ctx Context, dir Direction, f *packet.Frame) {
	if p.RateBps <= 0 {
		ctx.Forward(f)
		return
	}
	tx := time.Duration(float64(f.Len()*8) / p.RateBps * float64(time.Second))
	now := ctx.Now()
	start := now
	if p.nextFree[dir].After(start) {
		start = p.nextFree[dir]
	}
	done := start.Add(tx)
	p.nextFree[dir] = done
	ctx.ForwardAfter(done.Sub(now), f)
}

// TCPChecksumFixer rewrites incorrect TCP checksums to correct ones, the
// behaviour note 4 of Table 3 attributes to an in-path device on the China
// route ("the TCP checksum is corrected before arriving at the server").
type TCPChecksumFixer struct {
	Label string
}

// Name implements Element.
func (f *TCPChecksumFixer) Name() string { return f.Label }

// Process implements Element.
func (f *TCPChecksumFixer) Process(ctx Context, dir Direction, fr *packet.Frame) {
	p, defects := fr.Parse()
	if !defects.Has(packet.DefectTCPChecksum) || p.TCP == nil {
		ctx.Forward(fr)
		return
	}
	q := p.Clone()
	q.FixTransportChecksum()
	ctx.ForwardPacket(q)
}

// PathReassembler reassembles IP fragments in-path before forwarding, the
// behaviour note 2 of Table 3 observed on the testbed, T-Mobile, and China
// routes ("the fragmented packets are reassembled before reaching the
// server").
type PathReassembler struct {
	Label string
	r     *packet.Reassembler
}

// Name implements Element.
func (pr *PathReassembler) Name() string { return pr.Label }

// ForkElement implements Forkable: partial fragment state is deep-copied.
func (pr *PathReassembler) ForkElement() Element {
	c := &PathReassembler{Label: pr.Label}
	if pr.r != nil {
		c.r = pr.r.Clone()
	}
	return c
}

// Process implements Element.
func (pr *PathReassembler) Process(ctx Context, dir Direction, f *packet.Frame) {
	if pr.r == nil {
		pr.r = packet.NewReassembler()
	}
	// Non-fragments pass through with their cached parse intact; only
	// actual fragments pay the reassembly machinery (mirroring the
	// Reassembler's own pass-through rule, including short garbage whose
	// zero-valued parse has no fragment fields set).
	if p, _ := f.Parse(); p.IP.FragOffset == 0 && !p.IP.MoreFragments() {
		ctx.Forward(f)
		return
	}
	out, done := pr.r.Add(f.Raw())
	if done {
		if ctx.Traced() {
			r := ctx.Rec()
			r.Record(obs.Event{VNS: ctx.VNS(), Kind: obs.KindLinkReassemble, Actor: pr.Label, Value: int64(len(out))})
			r.Add(obs.CtrReassemblies, 1)
		}
		ctx.ForwardRaw(out)
	}
}

// Tap records every packet that passes it; tests and the replay server's
// packet capture use it to decide the paper's "Reaches Server?" column.
type Tap struct {
	Label  string
	Seen   []TapRecord
	OnPass func(dir Direction, raw []byte)
}

// TapRecord is one observed packet.
type TapRecord struct {
	At  time.Time
	Dir Direction
	Raw []byte
}

// Name implements Element.
func (t *Tap) Name() string { return t.Label }

// ForkElement implements Forkable. The capture slice is copied (records
// themselves are immutable); an OnPass hook is shared, so forks of tapped
// paths should only be driven when the hook is concurrency-safe or nil.
func (t *Tap) ForkElement() Element {
	return &Tap{Label: t.Label, Seen: append([]TapRecord(nil), t.Seen...), OnPass: t.OnPass}
}

// Process implements Element.
func (t *Tap) Process(ctx Context, dir Direction, f *packet.Frame) {
	// Taps outlive replays, so the capture copies the bytes: arena-owned
	// frame buffers are only valid until the next replay's arena reset.
	raw := append([]byte(nil), f.Raw()...)
	t.Seen = append(t.Seen, TapRecord{At: ctx.Now(), Dir: dir, Raw: raw})
	if t.OnPass != nil {
		t.OnPass(dir, raw)
	}
	ctx.Forward(f)
}

// Reset clears the tap's record.
func (t *Tap) Reset() { t.Seen = nil }
