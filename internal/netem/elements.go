package netem

import (
	"time"

	"repro/internal/netem/packet"
)

// Hop models one TTL-decrementing router. A packet whose TTL reaches zero
// at this hop is dropped and, when EmitICMP is set, answered with an ICMP
// time-exceeded toward its source address — the mechanism lib·erate's
// middlebox-localization probes rely on.
type Hop struct {
	Label string
	Addr  packet.Addr
	// DropDefects drops packets exhibiting any of these defects, the way
	// strict operational routers discard malformed datagrams.
	DropDefects packet.DefectSet
	// EmitICMP controls whether TTL expiry is reported to the sender.
	EmitICMP bool
}

// Name implements Element.
func (h *Hop) Name() string { return h.Label }

// Process implements Element.
func (h *Hop) Process(ctx *Context, dir Direction, raw []byte) {
	if len(raw) < 20 {
		return // unroutable garbage
	}
	if !h.DropDefects.Empty() {
		if _, defects := packet.Inspect(raw); defects.Intersects(h.DropDefects) {
			return
		}
	}
	ttl := raw[8]
	if ttl <= 1 {
		if h.EmitICMP {
			var src packet.Addr
			copy(src[:], raw[12:16])
			icmp := packet.NewICMPTimeExceeded(h.Addr, src, raw)
			if dir == ToServer {
				ctx.SendToClient(icmp.Serialize())
			} else {
				ctx.SendToServer(icmp.Serialize())
			}
		}
		return
	}
	out := append([]byte(nil), raw...)
	decrementTTL(out)
	ctx.Forward(out)
}

// decrementTTL lowers the TTL byte and incrementally updates the header
// checksum per RFC 1624, preserving checksum *wrongness*: a deliberately
// corrupted checksum stays exactly as wrong after the update, just as it
// would through a real router's incremental update.
func decrementTTL(raw []byte) {
	oldWord := uint16(raw[8])<<8 | uint16(raw[9])
	raw[8]--
	newWord := uint16(raw[8])<<8 | uint16(raw[9])
	hc := uint16(raw[10])<<8 | uint16(raw[11])
	// HC' = ~(~HC + ~m + m')   (RFC 1624 eqn. 3)
	sum := uint32(^hc) + uint32(^oldWord) + uint32(newWord)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	hc = ^uint16(sum)
	raw[10] = byte(hc >> 8)
	raw[11] = byte(hc)
}

// Filter drops packets matching a predicate or defect set, in one or both
// directions. Operational networks in the paper dropped most malformed
// packets somewhere between the classifier and the server; Filter is how
// the per-network profiles express that.
type Filter struct {
	Label       string
	DropDefects packet.DefectSet
	// Drop, when non-nil, additionally drops packets it returns true for.
	Drop func(p *packet.Packet, defects packet.DefectSet) bool
	// OnlyDir, when non-nil, restricts filtering to one direction.
	OnlyDir *Direction
}

// Name implements Element.
func (f *Filter) Name() string { return f.Label }

// Process implements Element.
func (f *Filter) Process(ctx *Context, dir Direction, raw []byte) {
	if f.OnlyDir != nil && dir != *f.OnlyDir {
		ctx.Forward(raw)
		return
	}
	p, defects := packet.Inspect(raw)
	if defects.Intersects(f.DropDefects) {
		return
	}
	if f.Drop != nil && f.Drop(p, defects) {
		return
	}
	ctx.Forward(raw)
}

// Pipe models the bottleneck link: every byte takes wire time proportional
// to the configured rate, so end-to-end throughput measurements (the
// paper's throttling-detection signal) are meaningful.
type Pipe struct {
	Label string
	// RateBps is the link capacity in bits per second.
	RateBps float64

	nextFree [2]time.Time
}

// Name implements Element.
func (p *Pipe) Name() string { return p.Label }

// Process implements Element.
func (p *Pipe) Process(ctx *Context, dir Direction, raw []byte) {
	if p.RateBps <= 0 {
		ctx.Forward(raw)
		return
	}
	tx := time.Duration(float64(len(raw)*8) / p.RateBps * float64(time.Second))
	now := ctx.Now()
	start := now
	if p.nextFree[dir].After(start) {
		start = p.nextFree[dir]
	}
	done := start.Add(tx)
	p.nextFree[dir] = done
	buf := raw
	ctx.Schedule(done.Sub(now), func() { ctx.Forward(buf) })
}

// TCPChecksumFixer rewrites incorrect TCP checksums to correct ones, the
// behaviour note 4 of Table 3 attributes to an in-path device on the China
// route ("the TCP checksum is corrected before arriving at the server").
type TCPChecksumFixer struct {
	Label string
}

// Name implements Element.
func (f *TCPChecksumFixer) Name() string { return f.Label }

// Process implements Element.
func (f *TCPChecksumFixer) Process(ctx *Context, dir Direction, raw []byte) {
	p, defects := packet.Inspect(raw)
	if !defects.Has(packet.DefectTCPChecksum) || p.TCP == nil {
		ctx.Forward(raw)
		return
	}
	q := p.Clone()
	q.TCP.Checksum = q.TCP.ComputeChecksum(q.IP.Src, q.IP.Dst, q.Payload)
	ctx.ForwardPacket(q)
}

// PathReassembler reassembles IP fragments in-path before forwarding, the
// behaviour note 2 of Table 3 observed on the testbed, T-Mobile, and China
// routes ("the fragmented packets are reassembled before reaching the
// server").
type PathReassembler struct {
	Label string
	r     *packet.Reassembler
}

// Name implements Element.
func (pr *PathReassembler) Name() string { return pr.Label }

// Process implements Element.
func (pr *PathReassembler) Process(ctx *Context, dir Direction, raw []byte) {
	if pr.r == nil {
		pr.r = packet.NewReassembler()
	}
	out, done := pr.r.Add(raw)
	if done {
		ctx.Forward(out)
	}
}

// Tap records every packet that passes it; tests and the replay server's
// packet capture use it to decide the paper's "Reaches Server?" column.
type Tap struct {
	Label  string
	Seen   []TapRecord
	OnPass func(dir Direction, raw []byte)
}

// TapRecord is one observed packet.
type TapRecord struct {
	At  time.Time
	Dir Direction
	Raw []byte
}

// Name implements Element.
func (t *Tap) Name() string { return t.Label }

// Process implements Element.
func (t *Tap) Process(ctx *Context, dir Direction, raw []byte) {
	t.Seen = append(t.Seen, TapRecord{At: ctx.Now(), Dir: dir, Raw: append([]byte(nil), raw...)})
	if t.OnPass != nil {
		t.OnPass(dir, raw)
	}
	ctx.Forward(raw)
}

// Reset clears the tap's record.
func (t *Tap) Reset() { t.Seen = nil }
