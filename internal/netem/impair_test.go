package netem

import (
	"testing"

	"repro/internal/netem/packet"
	"repro/internal/netem/vclock"
)

func impairRig(el Element) (*vclock.Clock, *Env, *int) {
	clock := vclock.New()
	env := New(clock, packet.AddrFrom("10.0.0.1"), packet.AddrFrom("10.0.0.9"))
	env.Append(el)
	n := 0
	env.SetServer(EndpointFunc(func([]byte) { n++ }))
	env.SetClient(EndpointFunc(func([]byte) {}))
	return clock, env, &n
}

func TestLossyLinkDropsDeterministically(t *testing.T) {
	run := func() (int, int) {
		ll := &LossyLink{Label: "l", LossRate: 0.3, Seed: 7}
		clock, env, n := impairRig(ll)
		for i := 0; i < 200; i++ {
			env.FromClient(packet.NewUDP(env.ClientAddr, env.ServerAddr, 1, 2, []byte("x")).Serialize())
		}
		clock.Run()
		return *n, ll.Dropped
	}
	got1, dropped1 := run()
	got2, dropped2 := run()
	if got1 != got2 || dropped1 != dropped2 {
		t.Fatalf("loss not deterministic: %d/%d vs %d/%d", got1, dropped1, got2, dropped2)
	}
	if dropped1 == 0 || got1 == 0 || got1+dropped1 != 200 {
		t.Fatalf("accounting wrong: delivered=%d dropped=%d", got1, dropped1)
	}
	// Roughly the configured rate.
	if dropped1 < 200*15/100 || dropped1 > 200*45/100 {
		t.Fatalf("drop rate off: %d/200", dropped1)
	}
}

func TestCorruptingLinkPreservesRoutability(t *testing.T) {
	cl := &CorruptingLink{Label: "c", CorruptRate: 1.0, Seed: 3}
	clock := vclock.New()
	env := New(clock, packet.AddrFrom("10.0.0.1"), packet.AddrFrom("10.0.0.9"))
	env.Append(cl)
	var seen []*packet.Packet
	env.SetServer(EndpointFunc(func(raw []byte) {
		p, _ := packet.Inspect(raw)
		seen = append(seen, p)
	}))
	src, dst := env.ClientAddr, env.ServerAddr
	for i := 0; i < 50; i++ {
		env.FromClient(packet.NewUDP(src, dst, 1, 2, []byte("payload-bytes")).Serialize())
	}
	clock.Run()
	if cl.Corrupted != 50 {
		t.Fatalf("corrupted %d, want all 50", cl.Corrupted)
	}
	for i, p := range seen {
		// Addresses survive (flips avoid the first 12 bytes).
		if p.IP.Src != src || p.IP.Dst != dst {
			t.Fatalf("packet %d lost its addresses", i)
		}
	}
}

func TestDuplicatingLinkCount(t *testing.T) {
	dl := &DuplicatingLink{Label: "d", DupRate: 0.5, Seed: 1}
	clock, env, n := impairRig(dl)
	for i := 0; i < 100; i++ {
		env.FromClient(packet.NewUDP(env.ClientAddr, env.ServerAddr, 1, 2, []byte("y")).Serialize())
	}
	clock.Run()
	if *n != 100+dl.Duplicated {
		t.Fatalf("delivered %d, want %d originals + %d dups", *n, 100, dl.Duplicated)
	}
	if dl.Duplicated < 30 || dl.Duplicated > 70 {
		t.Fatalf("dup rate off: %d/100", dl.Duplicated)
	}
}

func TestEnvTraceHook(t *testing.T) {
	clock := vclock.New()
	env := New(clock, packet.AddrFrom("10.0.0.1"), packet.AddrFrom("10.0.0.9"))
	env.Append(&Hop{Label: "h1", Addr: packet.AddrFrom("10.1.1.1")})
	var where []string
	env.Trace = func(w string, dir Direction, raw []byte) { where = append(where, w) }
	env.SetServer(EndpointFunc(func([]byte) {}))
	env.FromClient(packet.NewUDP(env.ClientAddr, env.ServerAddr, 1, 2, []byte("z")).Serialize())
	clock.Run()
	if len(where) != 2 || where[0] != "h1" || where[1] != "server" {
		t.Fatalf("trace = %v", where)
	}
	if env.DeliveredTo("h1") != 1 || env.DeliveredTo("server") != 1 {
		t.Fatalf("delivered stats: h1=%d server=%d", env.DeliveredTo("h1"), env.DeliveredTo("server"))
	}
}

func TestReplaceElements(t *testing.T) {
	clock := vclock.New()
	env := New(clock, packet.AddrFrom("10.0.0.1"), packet.AddrFrom("10.0.0.9"))
	h1 := &Hop{Label: "h1", Addr: packet.AddrFrom("10.1.1.1")}
	env.Append(h1)
	tap := &Tap{Label: "tap"}
	env.ReplaceElements([]Element{tap, h1})
	n := 0
	env.SetServer(EndpointFunc(func([]byte) { n++ }))
	env.FromClient(packet.NewUDP(env.ClientAddr, env.ServerAddr, 1, 2, []byte("q")).Serialize())
	clock.Run()
	if len(tap.Seen) != 1 || n != 1 {
		t.Fatalf("spliced chain broken: tap=%d server=%d", len(tap.Seen), n)
	}
}

func TestGilbertElliottBurstyLoss(t *testing.T) {
	run := func() (int, int, int) {
		ge := &GilbertElliottLink{Label: "ge", PGB: 0.05, PBG: 0.3, LossBad: 0.9, Seed: 11}
		clock, env, n := impairRig(ge)
		for i := 0; i < 500; i++ {
			env.FromClient(packet.NewUDP(env.ClientAddr, env.ServerAddr, 1, 2, []byte("x")).Serialize())
		}
		clock.Run()
		return *n, ge.Dropped, ge.BadPackets
	}
	got1, dropped1, bad1 := run()
	got2, dropped2, bad2 := run()
	if got1 != got2 || dropped1 != dropped2 || bad1 != bad2 {
		t.Fatalf("GE not deterministic: %d/%d/%d vs %d/%d/%d", got1, dropped1, bad1, got2, dropped2, bad2)
	}
	if got1+dropped1 != 500 || dropped1 == 0 || bad1 == 0 {
		t.Fatalf("accounting wrong: delivered=%d dropped=%d bad=%d", got1, dropped1, bad1)
	}
	// Losses are bursty: nearly all drops happen inside Bad-state dwell
	// time, which covers ~PGB/(PGB+PBG) ≈ 14% of packets; an independent
	// Bernoulli process with the same overall rate would spread them out.
	if dropped1 > bad1 {
		t.Fatalf("drops (%d) exceed bad-state packets (%d)", dropped1, bad1)
	}
}

func TestGilbertElliottForkContinuesStream(t *testing.T) {
	ge := &GilbertElliottLink{Label: "ge", PGB: 0.1, PBG: 0.2, LossBad: 0.9, Seed: 5}
	clock, env, _ := impairRig(ge)
	for i := 0; i < 100; i++ {
		env.FromClient(packet.NewUDP(env.ClientAddr, env.ServerAddr, 1, 2, []byte("x")).Serialize())
	}
	clock.Run()

	fk := ge.ForkElement().(*GilbertElliottLink)
	// Drive original and fork with identical traffic; their streams must
	// stay in lockstep from the fork point.
	clockA, envA, _ := impairRig(ge)
	clockB, envB, _ := impairRig(fk)
	for i := 0; i < 200; i++ {
		envA.FromClient(packet.NewUDP(envA.ClientAddr, envA.ServerAddr, 1, 2, []byte("y")).Serialize())
		envB.FromClient(packet.NewUDP(envB.ClientAddr, envB.ServerAddr, 1, 2, []byte("y")).Serialize())
	}
	clockA.Run()
	clockB.Run()
	if ge.Dropped != fk.Dropped || ge.BadPackets != fk.BadPackets || ge.bad != fk.bad {
		t.Fatalf("fork diverged: %d/%d/%v vs %d/%d/%v",
			ge.Dropped, ge.BadPackets, ge.bad, fk.Dropped, fk.BadPackets, fk.bad)
	}
}

func TestPayloadCorruptingLinkIsSilent(t *testing.T) {
	cl := &PayloadCorruptingLink{Label: "pc", CorruptRate: 1.0, Seed: 3}
	clock := vclock.New()
	env := New(clock, packet.AddrFrom("10.0.0.1"), packet.AddrFrom("10.0.0.9"))
	env.Append(cl)
	var payloads [][]byte
	var defects []packet.DefectSet
	env.SetServer(EndpointFunc(func(raw []byte) {
		p, d := packet.Inspect(raw)
		payloads = append(payloads, append([]byte(nil), p.Payload...))
		defects = append(defects, d)
	}))
	orig := []byte("integrity-sensitive-payload")
	for i := 0; i < 20; i++ {
		env.FromClient(packet.NewTCP(env.ClientAddr, env.ServerAddr, 1234, 80, uint32(i), 1, packet.FlagACK|packet.FlagPSH, orig).Serialize())
	}
	clock.Run()
	if cl.Corrupted != 20 {
		t.Fatalf("corrupted %d, want all 20", cl.Corrupted)
	}
	for i := range payloads {
		if string(payloads[i]) == string(orig) {
			t.Fatalf("packet %d not corrupted", i)
		}
		// Silent: the checksum was re-fixed, so the endpoint sees no defect.
		if defects[i] != 0 {
			t.Fatalf("packet %d arrived with defects %v — corruption not silent", i, defects[i])
		}
	}
}

func TestPayloadCorruptingLinkSparesMalformed(t *testing.T) {
	cl := &PayloadCorruptingLink{Label: "pc", CorruptRate: 1.0, Seed: 3}
	clock := vclock.New()
	env := New(clock, packet.AddrFrom("10.0.0.1"), packet.AddrFrom("10.0.0.9"))
	env.Append(cl)
	var got [][]byte
	env.SetServer(EndpointFunc(func(raw []byte) { got = append(got, append([]byte(nil), raw...)) }))
	// A deliberately checksum-broken packet (an inert evasion packet) must
	// pass through byte-identical, not be corrupted or repaired.
	p := packet.NewTCP(env.ClientAddr, env.ServerAddr, 1234, 80, 9, 1, packet.FlagACK|packet.FlagPSH, []byte("inert"))
	p.TCP.Checksum ^= 0x5555
	want := p.Serialize()
	env.FromClient(append([]byte(nil), want...))
	clock.Run()
	if cl.Corrupted != 0 || len(got) != 1 || string(got[0]) != string(want) {
		t.Fatalf("malformed packet not passed through untouched (corrupted=%d)", cl.Corrupted)
	}
}
