package liberate

import (
	"bytes"
	"strings"
	"testing"
)

// TestPublicAPIEngagement drives the entire documented public surface the
// way README's quickstart does.
func TestPublicAPIEngagement(t *testing.T) {
	net := NewTMobile()
	tr := AmazonPrimeVideo(96 << 10)
	report := (&Liberate{Net: net, Trace: tr}).Run()
	if !report.Detection.Differentiated {
		t.Fatal("no differentiation detected")
	}
	if report.Deployed == nil {
		t.Fatal("nothing deployed")
	}
	var buf bytes.Buffer
	report.WriteSummary(&buf)
	for _, want := range []string{"network=tmobile", "matching fields", "deployed:"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, buf.String())
		}
	}

	s := NewSession(net)
	res := s.Replay(tr, report.DeployTransform(1))
	if res.GroundTruthClass != "" || !res.IntegrityOK {
		t.Fatalf("deployment failed: class=%q integrity=%v", res.GroundTruthClass, res.IntegrityOK)
	}
}

func TestPublicAPINetworksAndTraces(t *testing.T) {
	for _, name := range []string{"testbed", "tmobile", "gfc", "iran", "att", "sprint"} {
		net, err := NetworkByName(name)
		if err != nil || net == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := NetworkByName("nope"); err == nil {
		t.Fatal("bogus network accepted")
	}
	if len(BuiltinTraces()) < 8 {
		t.Fatalf("builtin traces: %d", len(BuiltinTraces()))
	}
	if len(Taxonomy()) != 26 {
		t.Fatalf("taxonomy: %d", len(Taxonomy()))
	}
	if _, ok := TechniqueByID("ip-ttl-limited"); !ok {
		t.Fatal("technique lookup failed")
	}
}

func TestPublicAPITraceroute(t *testing.T) {
	net := NewGFC()
	hops := Traceroute(net, 24)
	responded := 0
	for _, h := range hops {
		if h.Responded {
			responded++
		}
	}
	if responded != net.TotalHops {
		t.Fatalf("traceroute: %d responded, topology has %d", responded, net.TotalHops)
	}
}

func TestPublicAPICustomSpec(t *testing.T) {
	net, err := ParseNetworkSpec([]byte(`{
		"name": "facade-test", "hops_before": 2, "hops_after": 1, "link_mbps": 10,
		"classifier": {
			"rules": [{"class": "video", "family": "http", "keywords": ["cloudfront.net"]}],
			"mode": "window", "window_packets": 5,
			"require_syn": true, "match_and_forget": true,
			"policies": {"video": {"throttle_mbps": 1.5, "burst_kb": 32}}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep := (&Liberate{Net: net, Trace: AmazonPrimeVideo(96 << 10)}).Run()
	if !rep.Detection.Differentiated || rep.Deployed == nil {
		t.Fatalf("custom spec engagement failed: %+v", rep.Detection)
	}
}

func TestPublicAPIRecorder(t *testing.T) {
	net := NewBaseline()
	rec := NewRecorder()
	net.Env.Append(rec.TapElement("tap"))
	s := NewSession(net)
	if res := s.Replay(EconomistWeb(8<<10), nil); !res.Completed {
		t.Fatal("capture replay failed")
	}
	captured := rec.Trace("cap", "app")
	if len(captured.Messages) != 2 {
		t.Fatalf("captured %d messages", len(captured.Messages))
	}
}

func TestPublicAPIRuleCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cache.json"
	cache := NewRuleCache()
	net := NewTMobile()
	rep := (&Liberate{Net: net, Trace: AmazonPrimeVideo(96 << 10)}).Run()
	cache.Store(rep)
	if err := cache.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRuleCache(path)
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := loaded.Lookup("tmobile", "amazon-prime-video")
	if !ok {
		t.Fatal("entry lost in round trip")
	}
	transform, _ := DeployFromCache(NewTMobile(), AmazonPrimeVideo(96<<10), entry, 9)
	if transform == nil {
		t.Fatal("loaded entry did not deploy")
	}
}

func TestPublicAPIOSProfiles(t *testing.T) {
	net := NewTestbed()
	winOS := WindowsOS
	rep := (&Liberate{Net: net, Trace: AmazonPrimeVideo(96 << 10), ServerOS: &winOS}).Run()
	if rep.Deployed == nil {
		t.Fatal("engagement against a Windows server failed")
	}
	// Against Windows, invalid IP options ARE usable (Windows drops them;
	// Linux would deliver them) — the OS profile changes the answer.
	v := rep.Evaluation.ByID("ip-invalid-options")
	if v == nil || !v.Usable() {
		t.Fatalf("invalid-options should be usable against Windows: %+v", v)
	}
}
