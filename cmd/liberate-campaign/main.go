// Command liberate-campaign runs a fleet of lib·erate engagements — the
// cross product of network profiles × traces × sweep parameters — on a
// bounded worker pool, and aggregates the results into a deterministic
// campaign summary:
//
//	liberate-campaign                                  # all networks × all traces
//	liberate-campaign -networks gfc -hours 0,6,12,18   # time-of-day sweep
//	liberate-campaign -spec campaign.json -workers 8 -out summary.json
//	liberate-campaign -networks tmobile,gfc -seeds 1,2,3 -csv rows.csv
//	liberate-campaign -export-spec campaign.json       # bootstrap a spec file
//	liberate-campaign -cluster 4 -store /tmp/store     # 4 worker processes, shared store
//
// The aggregate JSON is byte-identical for the same spec at any worker
// count — in-process (-workers) or across worker processes (-cluster);
// progress output (rates, ETA) goes to stderr and is the only
// scheduling-dependent output.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/registry"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "campaign spec JSON file (flags below override nothing when set)")
		networks  = flag.String("networks", "", "comma-separated network profiles (default: all built-ins)")
		traces    = flag.String("traces", "", "comma-separated traces (default: all built-ins)")
		hours     = flag.String("hours", "", "comma-separated hours of day to advance the virtual clock to (default: 0)")
		bodies    = flag.String("bodies", "", "comma-separated response body sizes in bytes (default: 98304)")
		seeds     = flag.String("seeds", "", "comma-separated deployment seeds / replication indices (default: 1)")
		serverOS  = flag.String("os", "", "replay server OS profile: linux|macos|windows (default: linux)")
		finger    = flag.Bool("fingerprint", false, "arm the phase-0 ambiguity fingerprint on every engagement: identify the DPI profile by probing and prune the evaluation suite; rows gain fingerprint/pruned_techniques columns")
		name      = flag.String("name", "", "campaign name for reports")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-engagement attempt timeout (0 = none)")
		retries   = flag.Int("retries", 0, "extra attempts for transiently-failed engagements")
		workers   = flag.Int("workers", 0, "worker pool size (default: GOMAXPROCS, clamped to engagement count)")
		useCache  = flag.Bool("cache", false, "memoize engagement reports by content (network fingerprint × trace hash × hour × OS); summaries gain a cache stats block")
		outJSON   = flag.String("out", "", "write aggregate JSON to this path ('-' = stdout)")
		outCSV    = flag.String("csv", "", "write per-engagement CSV to this path ('-' = stdout)")
		export    = flag.String("export-spec", "", "write the assembled spec as JSON to this path and exit ('-' = stdout)")
		traceDir  = flag.String("trace-dir", "", "record every engagement and write one JSON trace file per engagement into this directory")
		flight    = flag.Int("flight", 0, "arm a flight recorder keeping the newest N events per engagement; failure rows gain evidence tails (ignored with -trace-dir)")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		list      = flag.Bool("list", false, "list available networks and traces and exit")
		storeDir  = flag.String("store", "", "persistent engagement store directory: reports are served from it when present and written back after (shared with liberate-d and other runs)")
		scenarios = flag.String("scenario-pack", "", "scenario-pack/v1 JSON file; its scenarios become the outermost sweep axis (ignored with -spec — put scenario_pack in the spec instead)")
		clusterN  = flag.Int("cluster", 0, "run the campaign across N worker processes (re-execs this binary); 0 = in-process")
		chaos     = flag.String("chaos-frames", "", "inject frame faults into -cluster transport, e.g. drop:0.02,delay:0.05/750ms,trunc:0.01,dup:0.02,seed:7 (acceptance testing only)")
		// -cluster-worker is the hidden re-exec mode the coordinator
		// spawns: speak the shard protocol on stdin/stdout and exit.
		workerMode = flag.Bool("cluster-worker", false, "")
	)
	flag.Parse()

	if *workerMode {
		// Chaos knobs (crash/stall/slow-start) arrive via env so the chaos
		// acceptance test can arm individual exec-spawned workers.
		if err := cluster.ServeWorker(context.Background(), os.Stdin, os.Stdout, cluster.WorkerOptionsFromEnv()); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		fmt.Println("networks:")
		for _, n := range registry.Networks() {
			fmt.Printf("  %-8s %s\n", n.Name, n.Desc)
		}
		fmt.Println("traces:")
		for _, t := range registry.Traces() {
			fmt.Printf("  %-10s %-20s %s\n", t.Name, t.App, t.Desc)
		}
		return
	}

	spec, err := buildSpec(*specPath, *networks, *traces, *hours, *bodies, *seeds, *serverOS, *name, *timeout, *retries)
	if err != nil {
		fatal(err)
	}
	if *scenarios != "" && *specPath == "" {
		spec.ScenarioPack = *scenarios
		if err := spec.ResolveScenarios(""); err != nil {
			fatal(err)
		}
	}
	if *finger {
		spec.Fingerprint = true
	}

	if *export != "" {
		data, err := spec.MarshalIndent()
		if err != nil {
			fatal(err)
		}
		if err := writeOut(*export, append(data, '\n')); err != nil {
			fatal(err)
		}
		if *export != "-" {
			fmt.Printf("wrote %s\n", *export)
		}
		return
	}

	var summary *campaign.Summary
	if *clusterN > 0 {
		bin, err := os.Executable()
		if err != nil {
			fatal(err)
		}
		coord := &cluster.Coordinator{
			Spec:     spec,
			Workers:  *clusterN,
			Spawn:    cluster.ExecSpawner(bin, []string{"-cluster-worker"}),
			StoreDir: *storeDir,
			TraceDir: *traceDir,
			Flight:   *flight,
			Cache:    *useCache,
			Parallel: *workers,
		}
		if *chaos != "" {
			fc, err := cluster.ParseFrameChaos(*chaos)
			if err != nil {
				fatal(err)
			}
			coord.Chaos = fc
			// A chaosed transport needs the recovery machinery armed, or the
			// first dropped frame kills the run instead of degrading it.
			coord.WorkerRestarts = 16
			coord.ShardTimeout = 2 * time.Minute
		}
		if !*quiet {
			coord.Observer = campaign.NewProgress(os.Stderr)
		}
		summary, err = coord.Run(context.Background())
		if err != nil {
			fatal(err)
		}
	} else {
		runner := &campaign.Runner{Spec: spec, Workers: *workers, TraceDir: *traceDir, FlightRecorder: *flight}
		if *useCache {
			runner.Cache = campaign.NewCache()
		}
		if *storeDir != "" {
			store, err := campaign.OpenStore(*storeDir)
			if err != nil {
				fatal(err)
			}
			runner.Store = store
		}
		if !*quiet {
			runner.Observer = campaign.NewProgress(os.Stderr)
		}
		summary, err = runner.Run(context.Background())
		if err != nil {
			fatal(err)
		}
	}

	wroteSomewhere := false
	if *outJSON != "" {
		data, err := summary.JSON()
		if err != nil {
			fatal(err)
		}
		if err := writeOut(*outJSON, append(data, '\n')); err != nil {
			fatal(err)
		}
		wroteSomewhere = wroteSomewhere || *outJSON == "-"
	}
	if *outCSV != "" {
		data, err := summary.CSV()
		if err != nil {
			fatal(err)
		}
		if err := writeOut(*outCSV, data); err != nil {
			fatal(err)
		}
		wroteSomewhere = wroteSomewhere || *outCSV == "-"
	}
	if !wroteSomewhere {
		summary.WriteSummary(os.Stdout)
	}
	if summary.Failed > 0 {
		os.Exit(1)
	}
}

func buildSpec(specPath, networks, traces, hours, bodies, seeds, serverOS, name string,
	timeout time.Duration, retries int) (campaign.Spec, error) {
	if specPath != "" {
		return campaign.LoadSpec(specPath)
	}
	spec := campaign.Spec{
		Name:     name,
		Networks: splitList(networks),
		Traces:   splitList(traces),
		ServerOS: serverOS,
		Timeout:  campaign.Duration(timeout),
		Retries:  retries,
	}
	var err error
	if spec.Hours, err = parseInts(hours); err != nil {
		return spec, fmt.Errorf("-hours: %w", err)
	}
	if spec.Bodies, err = parseInts(bodies); err != nil {
		return spec, fmt.Errorf("-bodies: %w", err)
	}
	ints, err := parseInts(seeds)
	if err != nil {
		return spec, fmt.Errorf("-seeds: %w", err)
	}
	for _, v := range ints {
		spec.Seeds = append(spec.Seeds, int64(v))
	}
	return spec, spec.Validate()
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeOut(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
