// Command liberate runs a full lib·erate engagement against a simulated
// network profile:
//
//	liberate -network tmobile -trace amazon
//	liberate -network gfc -trace economist -hour 21
//	liberate -network testbed -trace skype -json
//	liberate -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	liberate "repro"
	"repro/internal/campaign"
	"repro/internal/netem/stack"
	"repro/internal/registry"
)

func main() {
	var (
		network   = flag.String("network", "testbed", "network profile: "+strings.Join(registry.NetworkNames(), "|"))
		netFile   = flag.String("network-file", "", "JSON network spec file describing a custom middlebox (overrides -network)")
		trName    = flag.String("trace", "amazon", "trace: "+strings.Join(registry.TraceNames(), "|")+" or a JSON trace file")
		body      = flag.Int("body", 96<<10, "response body size in bytes for generated traces")
		hour      = flag.Int("hour", 0, "advance the virtual clock to this hour of day before engaging")
		serverOS  = flag.String("os", "linux", "replay server OS profile: linux|macos|windows")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		list      = flag.Bool("list", false, "list techniques, networks, and traces (machine-readable with -json)")
		exportTr  = flag.String("export-trace", "", "write the selected trace as JSON to this path and exit")
		doTracert = flag.Bool("traceroute", false, "print the path's hops and exit")
		doFinger  = flag.Bool("fingerprint", false, "run only the phase-0 ambiguity probes, print the identified DPI profile and probe evidence as JSON, and exit")
		impair    = flag.String("impair", "", "client-side link impairments, e.g. loss:0.02,ge:0.05/0.3/0.8,delay:5/2@ingress (kinds: loss|dup|ge|corrupt|payload|delay|reorder|nth|rate; optional @egress/@ingress); enables noise-robust phase logic")
		scenario  = flag.String("scenario", "", "scenario pack to arm: pack.json[:name] (scenario-pack/v1; name optional when the pack has exactly one scenario)")
		cachePath = flag.String("cache", "", "shared rule-cache file: deploy from it when possible, update it after engagements")
		traceOut  = flag.String("trace-out", "", "record the engagement's evidence stream and write it as JSON to this path ('-' = stdout)")
		storeDir  = flag.String("store", "", "persistent engagement store directory: serve the report from it when present, write it back after (named networks/traces only)")
	)
	flag.Parse()

	if *list {
		if *jsonOut {
			if err := writeListJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		fmt.Println("networks:", strings.Join(registry.NetworkNames(), " "))
		fmt.Println("traces:  ", strings.Join(registry.TraceNames(), " "))
		fmt.Println("techniques:")
		for _, t := range liberate.Taxonomy() {
			fmt.Printf("  %2d %-24s %-4s %-26s %s\n", t.Row, t.ID, t.Proto, t.Group, t.Desc)
		}
		return
	}

	tr, err := registry.ResolveTrace(*trName, *body)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *exportTr != "" {
		if err := tr.Save(*exportTr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *exportTr)
		return
	}

	var net *liberate.Network
	if *netFile != "" {
		net, err = liberate.LoadNetworkSpec(*netFile)
	} else {
		net, err = liberate.NetworkByName(*network)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *impair != "" {
		specs, err := liberate.ParseImpairments(*impair)
		if err == nil {
			err = net.AddImpairments(specs)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *scenario != "" {
		sc, err := resolveScenario(*scenario)
		if err == nil {
			err = sc.Apply(net)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *hour > 0 {
		net.Clock.RunFor(time.Duration(*hour) * time.Hour)
	}
	if *doTracert {
		for _, h := range liberate.Traceroute(net, 24) {
			if h.Responded {
				fmt.Printf("%2d  %s\n", h.TTL, h.Addr)
			} else {
				fmt.Printf("%2d  *\n", h.TTL)
			}
		}
		return
	}

	var osp *stack.OSProfile
	switch *serverOS {
	case "", "linux":
		osp = &stack.Linux
	case "macos":
		osp = &stack.MacOS
	case "windows":
		osp = &stack.Windows
	default:
		fmt.Fprintf(os.Stderr, "unknown OS profile %q\n", *serverOS)
		os.Exit(1)
	}

	// Fingerprint-only mode: ambiguity-probe the path, identify the DPI
	// profile, and print the evidence — no detection or evaluation.
	if *doFinger {
		fp := liberate.FingerprintNetwork(net, osp)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fp); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Persistent-store fast path: serve a previously computed report for
	// this exact engagement cell (network × trace × hour × body × OS)
	// without running anything — the same store liberate-campaign -store
	// and liberate-d share. Custom network files, impairments, and trace
	// files are not content-addressable, so the store stays out of the way.
	var store *campaign.Store
	var storeEng campaign.Engagement
	osName := *serverOS
	if osName == "" {
		osName = "linux"
	}
	if *storeDir != "" {
		if *netFile != "" || *impair != "" || *scenario != "" || !isRegistryTrace(*trName) {
			fmt.Fprintln(os.Stderr, "-store ignored: only named networks and traces are content-addressable")
		} else {
			store, err = campaign.OpenStore(*storeDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			storeEng = campaign.Engagement{Network: *network, Trace: *trName, Hour: *hour, Body: *body, Seed: 1}
			rep, ok, err := store.Get(storeEng, osName)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if ok {
				fmt.Fprintf(os.Stderr, "report served from store %s\n", store.Dir())
				emitReport(rep, *jsonOut)
				return
			}
		}
	}

	// Shared-cache fast path (§4.2): verify a cached technique with one
	// replay instead of a full engagement.
	var cache *liberate.RuleCache
	if *cachePath != "" {
		cache, err = liberate.LoadRuleCache(*cachePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		netName := *network
		if *netFile != "" {
			netName = net.Name
		}
		if entry, ok := cache.Lookup(netName, tr.Name); ok {
			if transform, rounds := liberate.DeployFromCache(net, tr, entry, 1); transform != nil {
				fmt.Printf("deployed %s from shared cache (%d verification replay(s))\n", entry.Technique, rounds)
				return
			}
			fmt.Println("cached technique no longer works; running a full engagement")
		}
	}

	var traceBuf *liberate.TraceBuffer
	if *traceOut != "" {
		traceBuf = liberate.NewTraceBuffer()
		net.Env.SetRecorder(traceBuf)
	}

	report := (&liberate.Liberate{Net: net, Trace: tr, ServerOS: osp}).Run()
	if traceBuf != nil {
		if err := writeTraceOut(*traceOut, traceBuf, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if cache != nil && report.Deployed != nil {
		cache.Store(report)
		if err := cache.Save(*cachePath); err != nil {
			fmt.Fprintln(os.Stderr, "cache save:", err)
		}
	}
	if store != nil {
		if err := store.Put(storeEng, osName, report); err != nil {
			fmt.Fprintln(os.Stderr, "store put:", err)
		}
	}
	emitReport(report, *jsonOut)
}

// emitReport renders the engagement outcome, shared by the fresh and
// store-served paths.
func emitReport(report *liberate.Report, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summarize(report)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	report.WriteSummary(os.Stdout)
}

// resolveScenario loads the -scenario argument: a scenario-pack file,
// optionally suffixed ":name" to pick one world. A path that exists
// verbatim wins over the split (file names may contain colons).
func resolveScenario(arg string) (*liberate.ScenarioSpec, error) {
	path, name := arg, ""
	if _, err := os.Stat(arg); err != nil {
		if i := strings.LastIndexByte(arg, ':'); i > 0 {
			path, name = arg[:i], arg[i+1:]
		}
	}
	pack, err := liberate.LoadScenarioPack(path)
	if err != nil {
		return nil, err
	}
	if name == "" {
		if len(pack.Scenarios) != 1 {
			return nil, fmt.Errorf("scenario pack %s has %d scenarios; pick one with %s:<name>",
				path, len(pack.Scenarios), path)
		}
		return &pack.Scenarios[0], nil
	}
	sc := pack.Find(name)
	if sc == nil {
		return nil, fmt.Errorf("scenario pack %s has no scenario %q", path, name)
	}
	return sc, nil
}

// isRegistryTrace reports whether name is a built-in trace (as opposed
// to a trace file path, which the store cannot key).
func isRegistryTrace(name string) bool {
	for _, n := range registry.TraceNames() {
		if n == name {
			return true
		}
	}
	return false
}

// writeTraceOut serializes the engagement's evidence stream (-trace-out).
func writeTraceOut(path string, buf *liberate.TraceBuffer, report *liberate.Report) error {
	meta := liberate.TraceMeta{Network: report.Network, Trace: report.TraceName}
	if path == "-" {
		return buf.WriteJSON(os.Stdout, meta)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := buf.WriteJSON(f, meta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeListJSON emits the machine-readable registry listing (-list
// -json), the format campaign spec generators consume.
func writeListJSON(w *os.File) error {
	type techniqueInfo struct {
		Row   int    `json:"row"`
		ID    string `json:"id"`
		Proto string `json:"proto"`
		Group string `json:"group"`
		Desc  string `json:"desc"`
	}
	listing := struct {
		Networks   []registry.NetworkEntry `json:"networks"`
		Traces     []registry.TraceEntry   `json:"traces"`
		Techniques []techniqueInfo         `json:"techniques"`
	}{
		Networks: registry.Networks(),
		Traces:   registry.Traces(),
	}
	for _, t := range liberate.Taxonomy() {
		listing.Techniques = append(listing.Techniques, techniqueInfo{
			Row: t.Row, ID: t.ID, Proto: string(t.Proto), Group: string(t.Group), Desc: t.Desc,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(listing)
}

// summary is the JSON-friendly view of a report.
type summary struct {
	Network          string        `json:"network"`
	Trace            string        `json:"trace"`
	Differentiated   bool          `json:"differentiated"`
	Kinds            []string      `json:"kinds,omitempty"`
	Fields           []string      `json:"matching_fields,omitempty"`
	WindowLimited    bool          `json:"window_limited"`
	AllPackets       bool          `json:"inspects_all_packets"`
	PortSpecific     bool          `json:"port_specific"`
	ResidualBlocking bool          `json:"residual_blocking"`
	MiddleboxTTL     int           `json:"middlebox_ttl"`
	Working          []string      `json:"working_techniques"`
	Deployed         string        `json:"deployed,omitempty"`
	Rounds           int           `json:"rounds"`
	Bytes            int64         `json:"bytes"`
	VirtualTime      time.Duration `json:"virtual_time_ns"`

	// Robust-mode accounting; zero (and omitted) on clean engagements.
	DetectTrials  int     `json:"detect_trials,omitempty"`
	MinConfidence float64 `json:"min_confidence,omitempty"`
}

func summarize(r *liberate.Report) summary {
	s := summary{
		Network: r.Network, Trace: r.TraceName,
		Differentiated: r.Detection.Differentiated,
		Rounds:         r.TotalRounds, Bytes: r.TotalBytes, VirtualTime: r.TotalTime,
	}
	for _, k := range r.Detection.Kinds {
		s.Kinds = append(s.Kinds, string(k))
	}
	if c := r.Characterization; c != nil {
		for _, f := range c.Fields {
			s.Fields = append(s.Fields, f.String())
		}
		s.WindowLimited = c.WindowLimited
		s.AllPackets = c.InspectsAllPackets
		s.PortSpecific = c.PortSpecific
		s.ResidualBlocking = c.ResidualBlocking
		s.MiddleboxTTL = c.MiddleboxTTL
	}
	s.DetectTrials = r.Detection.Trials
	s.MinConfidence = r.Detection.Confidence
	if r.Evaluation != nil {
		for _, v := range r.Evaluation.Working() {
			s.Working = append(s.Working, v.Technique.ID)
		}
		if mc := r.Evaluation.MinConfidence(); mc > 0 && (s.MinConfidence == 0 || mc < s.MinConfidence) {
			s.MinConfidence = mc
		}
	}
	if r.Deployed != nil {
		s.Deployed = r.Deployed.Technique.ID
	}
	return s
}
