// Command benchtab regenerates the paper's evaluation artifacts from the
// simulator:
//
//	benchtab -table 1          # Table 1: method comparison + measured overhead class
//	benchtab -table 2          # Table 2: per-technique-group overhead
//	benchtab -table 3          # Table 3: the full CC?/RS?/OS grid
//	benchtab -figure 4         # Figure 4: GFC flush intervals by time of day
//	benchtab -exp efficiency   # §6.x classifier-analysis costs
//	benchtab -exp tmobile      # §6.2 throughput with/without lib·erate
//	benchtab -exp persistence  # §6.1 classification persistence (120 s / 10 s)
//	benchtab -exp sprint       # §6.4 null result
//	benchtab -exp ablation     # DESIGN.md ablations
//	benchtab -exp campaign     # campaign worker-pool scaling + determinism check
//	benchtab -exp chaos        # fault-injection sweep: verdict stability under middlebox faults
//	benchtab -exp chaos -quick # ... CI smoke: two networks at one fault rate
//	benchtab -exp scenarios    # scenario-pack sweep determinism + cluster chaos dichotomy gate (exit 1 on failure)
//	benchtab -exp overhead     # clean-network overhead guards: robust mode ≤5%, recorder armed ≤15% (exit 1 above budget)
//	benchtab -exp allocs       # allocation guards: engagement allocs/op budget + zero-alloc scheduler steady state (exit 1 above)
//	benchtab -exp sched        # timing-wheel scheduler microbenchmarks (depths, cancel churn, same-instant dispatch)
//	benchtab -exp trace        # trace schema gate: one traced engagement validated against liberate-trace/v1
//	benchtab -exp fingerprint  # ambiguity fingerprint: per-profile identification + pruned vs full cold sweep (exit 1 on misidentification or nondeterminism)
//	benchtab -exp fingerprint -bench-json BENCH_6.json   # ... plus JSON snapshot
//	benchtab -exp perf         # substrate + macro perf benchmarks
//	benchtab -exp perf -bench-json BENCH_3.json   # ... plus JSON snapshot
//	benchtab -exp perf -cpuprofile cpu.pprof      # ... under the CPU profiler
//	benchtab -all              # everything, in order
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run holds main's body so deferred profile writers execute before the
// process exits — os.Exit directly in main would skip them.
func run() int {
	var (
		table  = flag.Int("table", 0, "regenerate Table N (1, 2, or 3)")
		figure = flag.Int("figure", 0, "regenerate Figure N (4)")
		exp    = flag.String("exp", "", "in-text experiment: efficiency|tmobile|persistence|sprint|ablation|extensions|armsrace|campaign|chaos|scenarios|overhead|allocs|trace|sched|fingerprint|perf")
		quick  = flag.Bool("quick", false, "with -exp chaos or -exp scenarios: restrict the sweep for CI")
		bjson  = flag.String("bench-json", "", "with -exp perf or -exp sched: also write the snapshot as JSON to this path")
		days   = flag.Int("days", 1, "days to sweep for Figure 4 (paper used 2)")
		trials = flag.Int("trials", 6, "trials per hour for Figure 4 (paper used 6)")
		body   = flag.Int("mb", 10, "video size in MB for the T-Mobile throughput experiment")
		csv    = flag.Bool("csv", false, "emit Figure 4 as CSV for plotting")
		all    = flag.Bool("all", false, "run everything")
		cpuOut = flag.String("cpuprofile", "", "write a CPU profile of the selected workload to this path (go tool pprof)")
		memOut = flag.String("memprofile", "", "write a heap profile taken after the selected workload to this path")
	)
	flag.Parse()

	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			return fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memOut != "" {
		// The heap snapshot is written on the way out, after the workload;
		// GC first so it shows live retention, not transient garbage.
		defer func() {
			f, err := os.Create(*memOut)
			if err != nil {
				fatal(err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	ran := false
	if *all || *table == 1 {
		fmt.Println("== Table 1: comparison between lib·erate and other classifier evasion methods ==")
		fmt.Println(experiments.RunTable1().Render())
		ran = true
	}
	if *all || *table == 2 {
		fmt.Println("== Table 2: high-level evasion techniques and overhead ==")
		fmt.Println(experiments.RunTable2().Render())
		ran = true
	}
	if *all || *table == 3 {
		fmt.Println("== Table 3: effectiveness of lib·erate's evasion techniques ==")
		fmt.Println(experiments.RunTable3().Render())
		ran = true
	}
	if *all || *figure == 4 {
		fmt.Println("== Figure 4: successful evasion intervals vary during the day (GFC) ==")
		fig := experiments.RunFigure4(*days, *trials)
		if *csv {
			fmt.Print(fig.CSV())
		} else {
			fmt.Println(fig.Render())
		}
		ran = true
	}
	if *all || *exp == "efficiency" {
		fmt.Println("== §6.1–§6.6: efficiency of classifier analysis ==")
		fmt.Println(experiments.RenderEfficiency(experiments.RunEfficiency()))
		ran = true
	}
	if *all || *exp == "tmobile" {
		fmt.Println("== §6.2: Binge On throughput with and without lib·erate ==")
		fmt.Println(experiments.RunTMobileThroughput(*body << 20).Render())
		ran = true
	}
	if *all || *exp == "persistence" {
		fmt.Println("== §6.1: classification persistence on the testbed ==")
		fmt.Println(experiments.RunPersistence().Render())
		ran = true
	}
	if *all || *exp == "sprint" {
		fmt.Println("== §6.4: Sprint null result ==")
		r := experiments.RunSprint()
		fmt.Printf("differentiated=%v after %d replay rounds (paper: no evidence of DPI)\n\n", r.Differentiated, r.Rounds)
		ran = true
	}
	if *all || *exp == "ablation" {
		fmt.Println("== DESIGN.md ablations ==")
		fmt.Print(experiments.RunAblationPruning().Render())
		fmt.Print(experiments.RunAblationBlinding(40).Render())
		fmt.Print(experiments.RunAblationSplit().Render())
		fmt.Println()
		ran = true
	}
	if *all || *exp == "armsrace" {
		fmt.Println("== §7 arms race: operator countermeasures vs adaptation ==")
		fmt.Println(experiments.RunArmsRace().Render())
		ran = true
	}
	if *all || *exp == "extensions" {
		fmt.Println("== §7 extensions: bilateral, masquerading, QUIC ==")
		fmt.Print(experiments.RunBilateral().Render())
		fmt.Print(experiments.RunMasquerade().Render())
		fmt.Print(experiments.RunQUIC().Render())
		fmt.Println()
		ran = true
	}
	if *all || *exp == "campaign" {
		fmt.Println("== campaign orchestrator: worker-pool scaling over the six paper networks ==")
		fmt.Println(experiments.RunCampaignScaling().Render())
		ran = true
	}
	if *all || *exp == "chaos" {
		fmt.Println("== chaos: verdict stability under stochastic middlebox faults ==")
		fmt.Println(experiments.RunChaos(*quick).Render())
		ran = true
	}
	if *all || *exp == "scenarios" {
		fmt.Println("== scenarios: scenario-pack sweep determinism + cluster chaos dichotomy ==")
		s := experiments.RunScenarios(*quick)
		fmt.Println(s.Render())
		if !s.Pass() {
			fmt.Fprintln(os.Stderr, "benchtab: scenario gate failed — sweep nondeterminism or silent engagement loss under chaos")
			return 1
		}
		ran = true
	}
	if *all || *exp == "overhead" {
		fmt.Println("== robustness overhead guard: clean-network replay cost ==")
		// Budgets are sized to the measurement floor of a busy shared
		// single-CPU box (~±10% on a ~25 µs replay), not to the ideal
		// costs: robust gating must stay ≤5%, and the armed flight ring
		// ≤15% — the ring's GC-scanned live set costs a real ~5-10%
		// now that the scheduler work made replays ~5× faster, so the
		// armed run is a loose upper bound on the default nop path
		// rather than a tight 2% proxy. A failing measurement is retried
		// twice (fresh interleaved sample each time): external load
		// spikes rarely survive three independent medians, a structural
		// regression always does.
		var o *experiments.RobustOverhead
		ok := false
		for attempt := 0; attempt < 3 && !ok; attempt++ {
			o = experiments.MeasureRobustOverhead(0)
			fmt.Println(o.Render())
			ok = o.Within(0.05) && o.RecorderWithin(0.15)
			if !ok && attempt < 2 {
				fmt.Println("budget exceeded; re-measuring")
			}
		}
		if !o.Within(0.05) {
			fmt.Fprintf(os.Stderr, "benchtab: robust-mode overhead %.1f%% exceeds the 5%% budget\n", (o.Ratio-1)*100)
			return 1
		}
		if !o.RecorderWithin(0.15) {
			fmt.Fprintf(os.Stderr, "benchtab: recorder overhead %.1f%% exceeds the 15%% budget\n", (o.RecorderRatio-1)*100)
			return 1
		}
		ran = true
	}
	if *all || *exp == "allocs" {
		fmt.Println("== allocation guard: full-engagement allocs/op ==")
		n := experiments.MeasureEngagementAllocs()
		fmt.Printf("full-engagement: %d allocs/op (budget %d)\n", n, experiments.EngagementAllocBudget)
		if n >= experiments.EngagementAllocBudget {
			fmt.Fprintf(os.Stderr, "benchtab: full-engagement allocations %d exceed the %d budget\n", n, experiments.EngagementAllocBudget)
			return 1
		}
		s := experiments.MeasureSchedulerAllocs()
		fmt.Printf("scheduler steady state: %d allocs/op (budget 0)\n\n", s)
		if s != 0 {
			fmt.Fprintf(os.Stderr, "benchtab: scheduler schedule→fire path allocates (%d allocs/op); the wheel's steady state must be pointer-free\n", s)
			return 1
		}
		ran = true
	}
	if *all || *exp == "sched" {
		fmt.Println("== sched: timing-wheel scheduler microbenchmarks ==")
		snap := experiments.RunSched()
		fmt.Println(snap.Render())
		if *bjson != "" {
			if err := snap.WriteJSON(*bjson); err != nil {
				return fatal(err)
			}
			fmt.Println("wrote", *bjson)
		}
		ran = true
	}
	if *all || *exp == "trace" {
		fmt.Println("== trace schema gate: one traced engagement validated against liberate-trace/v1 ==")
		c := experiments.RunTraceCheck()
		fmt.Println(c.Render())
		if c.Err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: emitted trace violates the event schema")
			return 1
		}
		ran = true
	}
	if *all || *exp == "fingerprint" {
		fmt.Println("== fingerprint: ambiguity-probe identification + pruned vs full cold sweep ==")
		fb := experiments.RunFingerprintBench()
		fmt.Println(fb.Render())
		if *bjson != "" {
			if err := fb.WriteJSON(*bjson); err != nil {
				return fatal(err)
			}
			fmt.Println("wrote", *bjson)
		}
		if !fb.Pass() {
			fmt.Fprintln(os.Stderr, "benchtab: fingerprint gate failed — misidentified profile or nondeterministic armed sweep")
			return 1
		}
		ran = true
	}
	if *all || *exp == "perf" {
		fmt.Println("== perf: substrate + macro benchmark snapshot ==")
		snap := experiments.RunPerf()
		fmt.Println(snap.Render())
		if *bjson != "" {
			if err := snap.WriteJSON(*bjson); err != nil {
				return fatal(err)
			}
			fmt.Println("wrote", *bjson)
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		return 2
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	return 1
}
