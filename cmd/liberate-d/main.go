// Command liberate-d serves lib·erate as a service: an HTTP daemon over
// the persistent campaign store that answers "what is the cheapest
// working technique for this network and traffic?" at interactive
// latency when the store is warm, and schedules the engagement in the
// background when it isn't:
//
//	liberate-d -store /var/lib/liberate/store
//	curl 'localhost:8866/v1/answer?network=tmobile&trace=amazon'
//	curl 'localhost:8866/v1/stats'
//
// The store is shared with liberate-campaign (-store) and cluster
// workers, so campaign sweeps pre-warm the daemon's answers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8866", "listen address")
		storeDir = flag.String("store", "", "persistent campaign store directory (required; created if missing)")
		workers  = flag.Int("workers", 2, "background engagement worker pool size")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-engagement timeout for background runs")
		queue    = flag.Int("queue", 64, "pending background engagement limit (full queue answers 503)")
	)
	flag.Parse()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "liberate-d: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	store, err := campaign.OpenStore(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	d := cluster.NewDaemon(context.Background(), store, cluster.DaemonOptions{
		Workers:    *workers,
		Timeout:    *timeout,
		QueueDepth: *queue,
	})
	log.Printf("liberate-d listening on %s (store %s, %d workers)", *addr, store.Dir(), *workers)
	if err := http.ListenAndServe(*addr, d.Handler()); err != nil {
		log.Fatal(err)
	}
}
